#include "src/service/wal.h"

#include <fcntl.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <set>

#include "src/service/wire.h"
#include "src/util/serialization.h"

namespace prochlo {

namespace {

namespace fs = std::filesystem;

// Record kinds inside a WAL block.  A block is one ordinary wire frame whose
// payload concatenates records — the CRC that guards spool segments guards
// the log, and the 22 B frame header is paid once per group commit, not once
// per report.
enum WalRecordKind : uint8_t {
  kWalReport = 1,        // shard, epoch, report (ack-less legacy sink)
  kWalReportCommit = 2,  // shard, epoch, session, seq, report — THE unified
                         // record: report durability and the ack commit are
                         // one atomic append
  kWalEvict = 3,         // session, floor
  kWalGoodbye = 4,       // session
};

constexpr char kMarkerName[] = "wal.ckpt";

uint64_t EncodedRecordSize(uint8_t kind, size_t report_size) {
  switch (kind) {
    case kWalReport:
      return 1 + 8 + 8 + 4 + report_size;
    case kWalReportCommit:
      return 1 + 8 + 8 + 8 + 8 + 4 + report_size;
    case kWalEvict:
      return 1 + 8 + 8;
    case kWalGoodbye:
      return 1 + 8;
    default:
      return 0;
  }
}

}  // namespace

IngestWal::IngestWal(const IngestWalConfig& config)
    : config_(config), fs_(config.fs != nullptr ? config.fs : Fs::Real()) {}

IngestWal::~IngestWal() {
  // Resolve any still-buffered completions (exactly-once: a completion that
  // never fires wedges its connection's ack book).  Best effort — at this
  // point the owner has already stopped the worker pool, so pending is
  // normally empty.
  (void)Sync();
  MutexLock lock(mu_);
  if (fd_ >= 0) {
    fs_->Close(fd_);
    fd_ = -1;
  }
}

std::string IngestWal::GenPath(uint64_t gen) const {
  return config_.dir + "/ingest-" + std::to_string(gen) + ".wal";
}

std::string IngestWal::MarkerPath() const { return config_.dir + "/" + kMarkerName; }

namespace {

// Whole-file read on the plain stdio path, like every other recovery read:
// post-crash reopen sees whatever bytes actually landed.
Bytes ReadWholeFile(const std::string& path) {
  Bytes out;
  if (std::FILE* f = std::fopen(path.c_str(), "rb")) {
    uint8_t buffer[1 << 16];
    size_t got = 0;
    while ((got = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
      out.insert(out.end(), buffer, buffer + got);
    }
    std::fclose(f);
  }
  return out;
}

Status WriteAllFs(Fs* fs, int fd, ByteSpan data) {
  size_t done = 0;
  while (done < data.size()) {
    auto n = fs->Write(fd, data.subspan(done));
    if (!n.ok()) {
      return n.error();
    }
    done += n.value();
  }
  return Status::Ok();
}

}  // namespace

Status IngestWal::WriteMarker(
    uint64_t covered_gen,
    const std::map<std::pair<uint64_t, uint64_t>, uint64_t>& segment_sizes) {
  Writer w;
  w.PutU64(covered_gen);
  w.PutU32(static_cast<uint32_t>(segment_sizes.size()));
  for (const auto& [key, bytes] : segment_sizes) {
    w.PutU64(key.first);   // epoch
    w.PutU64(key.second);  // shard
    w.PutU64(bytes);
  }
  Bytes frame = EncodeFrame(w.Take());

  const std::string marker = MarkerPath();
  const std::string tmp = marker + ".tmp";
  auto fd = fs_->Open(tmp, O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (!fd.ok()) {
    return fd.error();
  }
  Status result = WriteAllFs(fs_, fd.value(), frame);
  if (result.ok() && config_.fsync) {
    result = fs_->Sync(fd.value());
    if (result.ok()) {
      MutexLock lock(stats_mu_);
      stats_.fsyncs++;
    }
  }
  fs_->Close(fd.value());
  if (result.ok()) {
    // The atomic commit point for the checkpoint: before the rename the old
    // marker's truncate-and-replay instructions are authoritative, after it
    // the new ones are.
    result = fs_->Rename(tmp, marker);
  }
  if (result.ok() && config_.fsync) {
    // And the rename only holds once the dirent is durable.
    result = fs_->SyncDir(config_.dir);
  }
  if (!result.ok()) {
    (void)fs_->Remove(tmp);  // best effort; recovery also clears stale temps
  }
  return result;
}

// ----------------------------------------------------------------- recovery

Result<IngestWal::Recovery> IngestWal::RecoverBeforeSpoolOpen() {
  // Startup is single-threaded: no appender or barrier can exist before
  // FinishRecovery hands out the open WAL, so plain member access is safe.
  std::error_code ec;
  fs::create_directories(config_.dir, ec);
  if (ec) {
    return Error{"wal: cannot create " + config_.dir + ": " + ec.message()};
  }
  // A crash between writing and renaming the marker temp leaves it behind;
  // the rename never happened, so the real marker is authoritative.
  Status removed = fs_->Remove(MarkerPath() + ".tmp");
  if (!removed.ok()) {
    return removed.error();
  }

  std::set<uint64_t> sealed;
  std::map<std::pair<uint64_t, uint64_t>, uint64_t> unsealed_sizes;  // (epoch, shard)
  std::map<uint64_t, std::string> gens;
  bool have_marker = false;
  std::vector<std::pair<uint64_t, uint64_t>> segment_files;  // (epoch, shard)
  for (const auto& entry : fs::directory_iterator(config_.dir, ec)) {
    const std::string name = entry.path().filename().string();
    unsigned long a = 0, b = 0;
    char suffix[16] = {0};
    if (name == kMarkerName) {
      have_marker = true;
    } else if (std::sscanf(name.c_str(), "ingest-%lu.wal", &a) == 1 &&
               name == "ingest-" + std::to_string(a) + ".wal") {
      gens[a] = entry.path().string();
    } else if (std::sscanf(name.c_str(), "epoch-%lu.%15s", &a, suffix) == 2 &&
               std::string(suffix) == "sealed") {
      sealed.insert(a);
    } else if (std::sscanf(name.c_str(), "shard-%lu-epoch-%lu.seg", &a, &b) == 2) {
      segment_files.emplace_back(b, a);  // (epoch, shard)
    }
  }
  if (ec) {
    return Error{"wal: cannot scan " + config_.dir + ": " + ec.message()};
  }
  for (const auto& key : segment_files) {
    if (sealed.count(key.first) != 0) {
      continue;  // sealed epochs are complete; recovery never touches them
    }
    std::error_code size_ec;
    uintmax_t size = fs::file_size(
        SpoolSegmentPath(config_.dir, key.second, key.first), size_ec);
    unsealed_sizes[key] = size_ec ? 0 : static_cast<uint64_t>(size);
  }

  Recovery out;
  uint64_t covered = 0;
  std::map<std::pair<uint64_t, uint64_t>, uint64_t> marker_sizes;
  if (have_marker) {
    Bytes raw = ReadWholeFile(MarkerPath());
    FrameReader reader(raw);
    auto payload = reader.Next();
    bool parsed = false;
    if (payload) {
      Reader r(*payload);
      uint32_t count = 0;
      if (r.GetU64(&covered) && r.GetU32(&count)) {
        parsed = true;
        for (uint32_t i = 0; i < count && parsed; ++i) {
          uint64_t epoch = 0, shard = 0, bytes = 0;
          parsed = r.GetU64(&epoch) && r.GetU64(&shard) && r.GetU64(&bytes);
          if (parsed) {
            marker_sizes[{epoch, shard}] = bytes;
          }
        }
      }
    }
    if (!parsed) {
      // The marker is written via tmp + fsync + rename + dir fsync; a torn
      // one means the discipline was violated underneath us.  Guessing
      // risks double-ingesting checkpointed records — refuse instead.
      return Error{"wal: corrupt checkpoint marker " + MarkerPath()};
    }
    // Roll every unsealed segment back to its checkpointed size, and drop
    // segments the marker has never heard of (debris of a checkpoint or
    // replay that died before publishing).  The replay below reconstructs
    // everything past these sizes from the log.
    for (const auto& [key, disk_bytes] : unsealed_sizes) {
      auto it = marker_sizes.find(key);
      const std::string path = SpoolSegmentPath(config_.dir, key.second, key.first);
      if (it == marker_sizes.end()) {
        out.reset_segment_bytes += disk_bytes;
        Status dropped = fs_->Remove(path);
        if (!dropped.ok()) {
          return dropped.error();
        }
      } else if (disk_bytes > it->second) {
        out.reset_segment_bytes += disk_bytes - it->second;
        Status truncated = fs_->Truncate(path, it->second);
        if (!truncated.ok()) {
          return truncated.error();
        }
      }
    }
  } else if (!gens.empty()) {
    // FinishRecovery publishes the marker (and fsyncs the dirent) before
    // generation 1 is ever created, so generations without a marker mean
    // the directory has been tampered with; replaying them blind could
    // double-apply checkpointed records.
    return Error{"wal: generations present but no checkpoint marker in " + config_.dir};
  }

  // Replay the un-checkpointed suffix, oldest generation first, appending
  // report records straight into their segment files (so Spool::Open counts
  // them like any other durable frame) and collecting session ops in order.
  std::map<std::pair<uint64_t, uint64_t>, int> segment_fds;
  Status replay = Status::Ok();
  bool torn = false;  // everything after the first tear is suspect
  for (const auto& [gen, path] : gens) {
    recovered_gens_.push_back(gen);
    recovered_max_gen_ = std::max(recovered_max_gen_, gen);
    if (gen <= covered || torn || !replay.ok()) {
      continue;
    }
    Bytes raw = ReadWholeFile(path);
    // First pass finds the clean prefix; the second replays only it.  A torn
    // block tail is legal in the newest generation (a crash mid group
    // commit); anything valid *after* a tear is not replayable, because
    // session ops are only correct in order.
    {
      FrameReader probe(raw);
      while (probe.Next()) {
      }
      if (probe.clean_prefix_end() < raw.size()) {
        torn = true;
        out.truncated_bytes += raw.size() - probe.clean_prefix_end();
        raw.resize(probe.clean_prefix_end());
      }
    }
    FrameReader reader(raw);
    while (auto block = reader.Next()) {
      out.replayed_blocks++;
      Reader r(*block);
      while (r.ok() && !r.AtEnd() && replay.ok()) {
        uint8_t kind = 0;
        if (!r.GetU8(&kind)) {
          break;
        }
        switch (kind) {
          case kWalReport:
          case kWalReportCommit: {
            uint64_t shard = 0, epoch = 0, session = 0, seq = 0;
            Bytes report;
            bool got = r.GetU64(&shard) && r.GetU64(&epoch);
            if (got && kind == kWalReportCommit) {
              got = r.GetU64(&session) && r.GetU64(&seq);
            }
            if (!got || !r.GetLengthPrefixed(&report)) {
              replay = Error{"wal: truncated record inside a CRC-valid block"};
              break;
            }
            if (sealed.count(epoch) != 0) {
              break;  // defensive: the epoch sealed after this record was
                      // checkpointed; its segments are already complete
            }
            auto fd_it = segment_fds.find({epoch, shard});
            if (fd_it == segment_fds.end()) {
              const std::string seg = SpoolSegmentPath(config_.dir, shard, epoch);
              auto fd = fs_->Open(seg, O_CREAT | O_WRONLY | O_APPEND, 0644);
              if (!fd.ok()) {
                replay = fd.error();
                break;
              }
              fd_it = segment_fds.emplace(std::make_pair(epoch, shard), fd.value()).first;
              replayed_segment_paths_.push_back(seg);
            }
            replay = WriteAllFs(fs_, fd_it->second, EncodeFrame(report));
            if (replay.ok()) {
              out.replayed_reports++;
              if (kind == kWalReportCommit) {
                out.session_ops.push_back({SessionOp::kCommit, session, seq});
              }
            }
            break;
          }
          case kWalEvict: {
            uint64_t session = 0, floor = 0;
            if (!r.GetU64(&session) || !r.GetU64(&floor)) {
              replay = Error{"wal: truncated evict record"};
              break;
            }
            out.session_ops.push_back({SessionOp::kEvict, session, floor});
            break;
          }
          case kWalGoodbye: {
            uint64_t session = 0;
            if (!r.GetU64(&session)) {
              replay = Error{"wal: truncated goodbye record"};
              break;
            }
            out.session_ops.push_back({SessionOp::kGoodbye, session, 0});
            break;
          }
          default:
            // Unknown kinds have unknown lengths; nothing after this point
            // in the block can be framed.  The block's CRC passed, so this
            // is a newer writer's record — skip the remainder of the block,
            // keep later blocks.
            r = Reader(ByteSpan());
            break;
        }
      }
      if (!replay.ok()) {
        break;
      }
    }
    if (!replay.ok()) {
      break;
    }
  }
  for (const auto& [key, fd] : segment_fds) {
    fs_->Close(fd);
  }
  if (!replay.ok()) {
    return replay.error();
  }

  {
    MutexLock lock(mu_);
    covered_gen_ = covered;
  }
  recovered_ = true;
  return out;
}

Status IngestWal::FinishRecovery() {
  if (!recovered_) {
    return Error{"wal: FinishRecovery without RecoverBeforeSpoolOpen"};
  }
  // The replayed segment bytes must be durable before the new marker claims
  // them as checkpointed (the marker's sizes are truncation targets — they
  // must never exceed what survives a crash).
  if (config_.fsync) {
    std::sort(replayed_segment_paths_.begin(), replayed_segment_paths_.end());
    replayed_segment_paths_.erase(
        std::unique(replayed_segment_paths_.begin(), replayed_segment_paths_.end()),
        replayed_segment_paths_.end());
    for (const std::string& path : replayed_segment_paths_) {
      auto fd = fs_->Open(path, O_WRONLY, 0644);
      if (!fd.ok()) {
        return fd.error();
      }
      Status synced = fs_->Sync(fd.value());
      fs_->Close(fd.value());
      if (!synced.ok()) {
        return synced;
      }
    }
    // Cover replay-created segment files' dirents too.
    Status dir = fs_->SyncDir(config_.dir);
    if (!dir.ok()) {
      return dir;
    }
  }

  // Re-stat every unsealed segment: the caller has run Spool::Open() since
  // phase 1, which may have truncated pre-WAL torn tails; whatever is on
  // disk now is exactly the checkpointed state the new marker describes.
  std::error_code ec;
  std::set<uint64_t> sealed;
  std::vector<std::pair<uint64_t, uint64_t>> segment_files;
  for (const auto& entry : fs::directory_iterator(config_.dir, ec)) {
    const std::string name = entry.path().filename().string();
    unsigned long a = 0, b = 0;
    char suffix[16] = {0};
    if (std::sscanf(name.c_str(), "epoch-%lu.%15s", &a, suffix) == 2 &&
        std::string(suffix) == "sealed") {
      sealed.insert(a);
    } else if (std::sscanf(name.c_str(), "shard-%lu-epoch-%lu.seg", &a, &b) == 2) {
      segment_files.emplace_back(b, a);
    }
  }
  if (ec) {
    return Error{"wal: cannot scan " + config_.dir + ": " + ec.message()};
  }
  std::map<std::pair<uint64_t, uint64_t>, uint64_t> sizes;
  for (const auto& key : segment_files) {
    if (sealed.count(key.first) != 0) {
      continue;
    }
    std::error_code size_ec;
    uintmax_t size =
        fs::file_size(SpoolSegmentPath(config_.dir, key.second, key.first), size_ec);
    if (!size_ec) {
      sizes[key] = static_cast<uint64_t>(size);
    }
  }

  uint64_t covered = 0;
  {
    MutexLock lock(mu_);
    covered = std::max(covered_gen_, recovered_max_gen_);
  }
  Status marker = WriteMarker(covered, sizes);
  if (!marker.ok()) {
    return marker;
  }
  // The marker no longer references the replayed generations: delete them.
  // Failures are non-fatal — a stale generation <= covered_gen is skipped by
  // the next recovery.
  for (uint64_t gen : recovered_gens_) {
    (void)fs_->Remove(GenPath(gen));
  }

  // Open the first live generation past the marker.  Its dirent must be
  // durable before any group commit relies on it: fsync(fd) persists bytes,
  // the directory fsync persists the name.
  const uint64_t active = covered + 1;
  auto fd = fs_->Open(GenPath(active), O_CREAT | O_WRONLY | O_APPEND | O_TRUNC, 0644);
  if (!fd.ok()) {
    return fd.error();
  }
  if (config_.fsync) {
    Status dir = fs_->SyncDir(config_.dir);
    if (!dir.ok()) {
      fs_->Close(fd.value());
      return dir;
    }
  }
  {
    MutexLock sync_lock(sync_mu_);
    MutexLock lock(mu_);
    fd_ = fd.value();
    gen_ = active;
    gen_bytes_ = 0;
    covered_gen_ = covered;
    durable_sizes_ = std::move(sizes);
    next_lsn_ = 1;
    synced_lsn_ = 0;
  }
  replayed_segment_paths_.clear();
  recovered_gens_.clear();
  return Status::Ok();
}

// ------------------------------------------------------------------ appends

void IngestWal::AttachTargets(Spool* spool, SessionJournal* journal) {
  spool_ = spool;
  journal_ = journal;
}

void IngestWal::set_rollback_callback(RollbackCallback cb) { rollback_ = std::move(cb); }

void IngestWal::set_post_checkpoint_hook(std::function<void()> hook) {
  post_checkpoint_ = std::move(hook);
}

Result<uint64_t> IngestWal::AppendLocked(PendingRecord& record) {
  MutexLock lock(mu_);
  if (fd_ < 0) {
    return Error{"wal: not open"};
  }
  const uint64_t size = EncodedRecordSize(record.kind, record.report.size());
  if (size > kMaxFramePayload) {
    return Error{"wal: record exceeds max frame payload"};
  }
  record.lsn = next_lsn_++;
  pending_bytes_ += size;
  const uint64_t lsn = record.lsn;
  pending_.push_back(std::move(record));
  {
    MutexLock stats_lock(stats_mu_);
    stats_.appends++;
  }
  return lsn;
}

Result<uint64_t> IngestWal::AppendReport(size_t shard, uint64_t epoch, ByteSpan report,
                                         uint64_t session_id, uint64_t seq,
                                         Completion* done) {
  PendingRecord record;
  record.kind = session_id != 0 ? kWalReportCommit : kWalReport;
  record.shard = shard;
  record.epoch = epoch;
  record.session_id = session_id;
  record.value = seq;
  record.report.assign(report.begin(), report.end());
  if (done != nullptr && *done) {
    record.done = std::move(*done);
  }
  auto lsn = AppendLocked(record);  // moves from record only on success
  if (done != nullptr) {
    if (lsn.ok()) {
      *done = nullptr;  // consumed: the WAL now owns exactly-once firing
    } else if (record.done) {
      *done = std::move(record.done);  // hand back; the caller resolves it
    }
  }
  return lsn;
}

Result<uint64_t> IngestWal::AppendEvict(uint64_t session_id, uint64_t floor) {
  PendingRecord record;
  record.kind = kWalEvict;
  record.session_id = session_id;
  record.value = floor;
  return AppendLocked(record);
}

Result<uint64_t> IngestWal::AppendGoodbye(uint64_t session_id) {
  PendingRecord record;
  record.kind = kWalGoodbye;
  record.session_id = session_id;
  return AppendLocked(record);
}

// ------------------------------------------------------------- group commit

bool IngestWal::IsRolledBackLocked(uint64_t lsn) const {
  for (const auto& [lo, hi] : rolled_back_) {
    if (lsn >= lo && lsn <= hi) {
      return true;
    }
  }
  return false;
}

bool IngestWal::WasRolledBack(uint64_t lsn) const {
  MutexLock lock(sync_mu_);
  return IsRolledBackLocked(lsn);
}

Status IngestWal::FlushAsLeader() {
  // Precondition: this thread holds sync leadership (sync_inflight_ is set
  // and stays set until the caller clears it), so no other writer touches
  // the active generation fd.
  std::vector<PendingRecord> block;
  uint64_t target = 0;
  int fd = -1;
  uint64_t pre_bytes = 0;
  uint64_t active_gen = 0;
  bool dirty = false;
  {
    MutexLock lock(mu_);
    block = std::move(pending_);
    pending_.clear();
    pending_bytes_ = 0;
    target = next_lsn_ - 1;
    fd = fd_;
    pre_bytes = gen_bytes_;
    active_gen = gen_;
    dirty = dirty_tail_;
  }

  Status result = Status::Ok();
  uint64_t flushed_bytes = 0;
  bool wrote = false;
  if (dirty) {
    // A previous failed flush left garbage past the durable prefix and its
    // rollback truncate also failed.  Retry it before writing anything: a
    // clean frame appended after the garbage would make recovery's
    // clean-prefix probe replay the dead records sitting in front of it.
    result = fs_->Truncate(GenPath(active_gen), pre_bytes);
    if (result.ok()) {
      MutexLock lock(mu_);
      if (gen_ == active_gen) {
        dirty_tail_ = false;
      }
    }
  }
  if (result.ok() && !block.empty()) {
    wrote = true;
    // Pack the block into as few frames as fit (one, except for enormous
    // bursts): the 22 B frame header amortizes across every record.
    Bytes out;
    Writer payload;
    auto flush_frame = [&] {
      if (!payload.data().empty()) {
        AppendFrame(out, payload.Take());
        payload = Writer();
      }
    };
    for (const PendingRecord& r : block) {
      const uint64_t size = EncodedRecordSize(r.kind, r.report.size());
      if (payload.data().size() + size > kMaxFramePayload) {
        flush_frame();
      }
      payload.PutU8(r.kind);
      switch (r.kind) {
        case kWalReport:
          payload.PutU64(r.shard);
          payload.PutU64(r.epoch);
          payload.PutLengthPrefixed(r.report);
          break;
        case kWalReportCommit:
          payload.PutU64(r.shard);
          payload.PutU64(r.epoch);
          payload.PutU64(r.session_id);
          payload.PutU64(r.value);
          payload.PutLengthPrefixed(r.report);
          break;
        case kWalEvict:
          payload.PutU64(r.session_id);
          payload.PutU64(r.value);
          break;
        case kWalGoodbye:
          payload.PutU64(r.session_id);
          break;
        default:
          break;
      }
    }
    flush_frame();
    flushed_bytes = out.size();
    result = WriteAllFs(fs_, fd, out);
    if (result.ok() && config_.fsync) {
      result = fs_->Sync(fd);
    }
  }

  if (wrote && !result.ok()) {
    // Roll the generation back to its durable prefix so the dead records
    // can never replay; if even that fails, mark the tail dirty — the next
    // flush retries the truncate before it writes.
    MutexLock lock(mu_);
    if (gen_ == active_gen) {
      Status truncated = fs_->Truncate(GenPath(active_gen), pre_bytes);
      if (!truncated.ok()) {
        dirty_tail_ = true;
      }
    }
  } else if (wrote) {
    MutexLock lock(mu_);
    gen_bytes_ = pre_bytes + flushed_bytes;
    for (PendingRecord& r : block) {
      FlushedRecord flushed;
      flushed.kind = r.kind;
      flushed.shard = r.shard;
      flushed.epoch = r.epoch;
      flushed.session_id = r.session_id;
      flushed.value = r.value;
      flushed.report = r.report;  // copy: completions below still hold r
      unapplied_.push_back(std::move(flushed));
      unapplied_bytes_ += EncodedRecordSize(r.kind, r.report.size());
    }
  }

  {
    MutexLock stats_lock(stats_mu_);
    if (wrote && result.ok()) {
      stats_.blocks_flushed++;
      stats_.records_flushed += block.size();
      stats_.bytes_flushed += flushed_bytes;
      if (config_.fsync) {
        stats_.fsyncs++;
      }
    }
    if (!result.ok()) {
      stats_.rolled_back_records += block.size();
    }
  }

  // Completions fire with no WAL lock held, strictly after the fsync and
  // strictly before the sync watermark (or the rolled-back range) becomes
  // visible — so a barrier returning implies the completion already ran,
  // and a stack-allocated completion context cannot dangle.
  for (PendingRecord& r : block) {
    if (!result.ok() && rollback_ &&
        (r.kind == kWalReport || r.kind == kWalReportCommit)) {
      rollback_(static_cast<size_t>(r.shard), r.epoch);
    }
    if (r.done) {
      r.done(result);
    }
  }

  {
    MutexLock sync_lock(sync_mu_);
    if (result.ok()) {
      synced_lsn_ = std::max(synced_lsn_, target);
    } else if (!block.empty()) {
      // Dead LSNs must answer "rolled back", not strand a follower waiting
      // for a watermark that skipped them.  The list only grows on flush
      // failures — rare enough that a linear scan is fine.
      rolled_back_.emplace_back(block.front().lsn, block.back().lsn);
    }
  }
  return result;
}

Status IngestWal::SyncUpTo(uint64_t lsn) {
  MutexLock sync_lock(sync_mu_);
  for (;;) {
    if (IsRolledBackLocked(lsn)) {
      return Error{"wal: record lost by a failed group commit"};
    }
    if (lsn <= synced_lsn_) {
      return Status::Ok();
    }
    if (!sync_inflight_) {
      sync_inflight_ = true;
      sync_lock.Unlock();
      Status flushed = FlushAsLeader();
      sync_lock.Lock();
      sync_inflight_ = false;
      sync_cv_.NotifyAll();
      if (!flushed.ok() && IsRolledBackLocked(lsn)) {
        return flushed;
      }
      continue;
    }
    sync_cv_.Wait(sync_mu_);
  }
}

Status IngestWal::Sync() {
  uint64_t last = 0;
  {
    MutexLock lock(mu_);
    last = next_lsn_ - 1;
  }
  if (last == 0) {
    return Status::Ok();
  }
  // Barrier semantics, not record semantics: Sync() returns Ok once every
  // record appended so far is RESOLVED — durable, or rolled back with its
  // completion already NACKed.  (SyncUpTo(lsn) is the per-record form and
  // keeps failing for a dead lsn.)  Only the call that leads a failing
  // flush reports the error; a later barrier over the same dead tail is
  // clean, so a healed service can quiesce and stop.
  MutexLock sync_lock(sync_mu_);
  for (;;) {
    if (last <= synced_lsn_ || IsRolledBackLocked(last)) {
      return Status::Ok();
    }
    if (!sync_inflight_) {
      sync_inflight_ = true;
      sync_lock.Unlock();
      Status flushed = FlushAsLeader();
      sync_lock.Lock();
      sync_inflight_ = false;
      sync_cv_.NotifyAll();
      if (!flushed.ok()) {
        return flushed;
      }
      continue;
    }
    sync_cv_.Wait(sync_mu_);
  }
}

// --------------------------------------------------------------- checkpoint

Status IngestWal::Checkpoint() {
  MutexLock ckpt_lock(ckpt_mu_);

  // Phase A — under group-commit leadership: flush the pending block, then
  // rotate to a fresh generation and take the unapplied backlog.  Barriers
  // and appends resume the moment leadership is released; the write-through
  // below touches no WAL lock, so group commits proceed concurrently with
  // the checkpoint's segment writes.
  {
    MutexLock sync_lock(sync_mu_);
    while (sync_inflight_) {
      sync_cv_.Wait(sync_mu_);
    }
    sync_inflight_ = true;
  }
  Status flushed = FlushAsLeader();
  std::deque<FlushedRecord> batch;
  uint64_t batch_bytes = 0;
  uint64_t covered = 0;
  uint64_t prev_covered = 0;
  std::map<std::pair<uint64_t, uint64_t>, uint64_t> pre_sizes;
  Status rotated = Status::Ok();
  if (flushed.ok()) {
    MutexLock lock(mu_);
    if (!unapplied_.empty()) {
      auto fd = fs_->Open(GenPath(gen_ + 1), O_CREAT | O_WRONLY | O_APPEND | O_TRUNC, 0644);
      if (!fd.ok()) {
        rotated = fd.error();
      } else {
        Status dir = config_.fsync ? fs_->SyncDir(config_.dir) : Status::Ok();
        if (!dir.ok()) {
          fs_->Close(fd.value());
          (void)fs_->Remove(GenPath(gen_ + 1));  // best effort
          rotated = dir;
        } else {
          fs_->Close(fd_);
          fd_ = fd.value();
          gen_++;
          gen_bytes_ = 0;
          batch = std::move(unapplied_);
          unapplied_.clear();
          batch_bytes = unapplied_bytes_;
          unapplied_bytes_ = 0;
          covered = gen_ - 1;
          prev_covered = covered_gen_;
          pre_sizes = durable_sizes_;
        }
      }
    }
  }
  {
    MutexLock sync_lock(sync_mu_);
    sync_inflight_ = false;
    sync_cv_.NotifyAll();
  }
  if (!flushed.ok() || !rotated.ok()) {
    MutexLock stats_lock(stats_mu_);
    stats_.checkpoint_failures++;
    return flushed.ok() ? rotated : flushed;
  }
  if (batch.empty()) {
    return Status::Ok();
  }

  // Phase B — write-through.  Reports append to their spool segments (the
  // spool's frame counts stay authoritative), session ops re-journal in
  // order, then everything fsyncs before the marker publishes the new
  // truncate-to sizes.
  struct TouchedSegment {
    uint64_t pre_bytes = 0;
    uint64_t frames_added = 0;
    uint64_t bytes_added = 0;
  };
  std::map<std::pair<uint64_t, uint64_t>, TouchedSegment> touched;
  Status applied = Status::Ok();
  uint64_t journal_lsn = 0;
  for (const FlushedRecord& r : batch) {
    switch (r.kind) {
      case kWalReport:
      case kWalReportCommit: {
        applied = spool_->Append(static_cast<size_t>(r.shard), r.epoch, r.report);
        if (applied.ok()) {
          auto [it, fresh] = touched.try_emplace(std::make_pair(r.epoch, r.shard));
          if (fresh) {
            auto pre = pre_sizes.find({r.epoch, r.shard});
            it->second.pre_bytes = pre != pre_sizes.end() ? pre->second : 0;
          }
          it->second.frames_added++;
          it->second.bytes_added += FrameWireSize(r.report.size());
          if (r.kind == kWalReportCommit) {
            auto lsn = journal_->AppendCommit(r.session_id, 0, r.value);
            if (lsn.ok()) {
              journal_lsn = lsn.value();
            } else {
              applied = lsn.error();
            }
          }
        }
        break;
      }
      case kWalEvict: {
        auto lsn = journal_->AppendEvict(r.session_id, r.value);
        if (lsn.ok()) {
          journal_lsn = lsn.value();
        } else {
          applied = lsn.error();
        }
        break;
      }
      case kWalGoodbye: {
        auto lsn = journal_->AppendGoodbye(r.session_id);
        if (lsn.ok()) {
          journal_lsn = lsn.value();
        } else {
          applied = lsn.error();
        }
        break;
      }
      default:
        break;
    }
    if (!applied.ok()) {
      break;
    }
  }
  if (applied.ok() && journal_lsn != 0) {
    applied = journal_->SyncUpTo(journal_lsn);
  }
  if (applied.ok() && config_.fsync) {
    applied = spool_->SyncAll();
  }
  if (applied.ok() && config_.fsync) {
    // Segments created by this write-through must have DURABLE dirents
    // before the marker publishes truncate-to sizes that reference them —
    // a marker that survives a crash its segments did not would truncate
    // and replay against files that no longer exist.
    applied = fs_->SyncDir(config_.dir);
  }

  if (!applied.ok()) {
    // Undo the partial write-through: segments roll back to their
    // pre-checkpoint sizes (duplicate journal records are harmless — replay
    // is idempotent — so the journal is left alone), and the batch returns
    // to the FRONT of the queue so the retry preserves record order.
    for (const auto& [key, t] : touched) {
      (void)spool_->TruncateSegmentTo(static_cast<size_t>(key.second), key.first,
                                      t.pre_bytes, t.frames_added);
    }
    {
      MutexLock lock(mu_);
      unapplied_bytes_ += batch_bytes;
      unapplied_.insert(unapplied_.begin(), std::make_move_iterator(batch.begin()),
                        std::make_move_iterator(batch.end()));
    }
    MutexLock stats_lock(stats_mu_);
    stats_.checkpoint_failures++;
    return applied;
  }

  std::map<std::pair<uint64_t, uint64_t>, uint64_t> marker_sizes;
  {
    MutexLock lock(mu_);
    for (const auto& [key, t] : touched) {
      durable_sizes_[key] = t.pre_bytes + t.bytes_added;
    }
    covered_gen_ = covered;
    marker_sizes = durable_sizes_;
  }
  Status marker = WriteMarker(covered, marker_sizes);
  if (!marker.ok()) {
    // The records ARE durably applied; only the marker is stale.  A crash
    // now truncates the segments back to the old marker's sizes and replays
    // the still-present generations — byte-identical, exactly once.  Revert
    // the covered watermark so the next checkpoint's marker re-covers these
    // generations (and its unlink sweep removes them).
    MutexLock lock(mu_);
    covered_gen_ = prev_covered;
    MutexLock stats_lock(stats_mu_);
    stats_.checkpoint_failures++;
    return marker;
  }
  for (uint64_t gen = prev_covered + 1; gen <= covered; ++gen) {
    // Best effort: a stale generation <= covered_gen is skipped by recovery.
    (void)fs_->Remove(GenPath(gen));
  }
  {
    MutexLock stats_lock(stats_mu_);
    stats_.checkpoints++;
    stats_.checkpointed_records += batch.size();
  }
  if (post_checkpoint_) {
    post_checkpoint_();
  }
  return Status::Ok();
}

Status IngestWal::MaybeCheckpoint() {
  {
    MutexLock lock(mu_);
    if (unapplied_bytes_ + pending_bytes_ < config_.checkpoint_threshold_bytes) {
      return Status::Ok();
    }
  }
  return Checkpoint();
}

void IngestWal::NoteEpochSealed(uint64_t epoch) {
  MutexLock lock(mu_);
  for (auto it = durable_sizes_.lower_bound({epoch, 0});
       it != durable_sizes_.end() && it->first.first == epoch;) {
    it = durable_sizes_.erase(it);
  }
}

IngestWal::Stats IngestWal::stats() const {
  MutexLock lock(stats_mu_);
  return stats_;
}

uint64_t IngestWal::unapplied_bytes() const {
  MutexLock lock(mu_);
  return unapplied_bytes_ + pending_bytes_;
}

}  // namespace prochlo

#include "src/service/ingest.h"

#include <algorithm>
#include <map>

#include "src/crypto/sha256.h"
#include "src/service/wal.h"

namespace prochlo {

size_t ShardedIngest::ShardOfReport(ByteSpan sealed_report, size_t num_shards) {
  // Hash of the ciphertext bytes only: the frontend never inspects (and
  // could not decrypt) the report's contents.  SHA-256 keeps the assignment
  // uniform even against adversarial report construction.
  Sha256Digest digest = Sha256::TaggedHash("prochlo-ingest-shard", sealed_report);
  uint64_t h = 0;
  for (int i = 0; i < 8; ++i) {
    h |= static_cast<uint64_t>(digest[i]) << (8 * i);
  }
  return static_cast<size_t>(h % num_shards);
}

ShardedIngest::ShardedIngest(IngestConfig config, Spool* spool)
    : config_(config), spool_(spool) {
  if (config_.num_shards == 0) {
    config_.num_shards = 1;
  }
  shards_.reserve(config_.num_shards);
  for (size_t s = 0; s < config_.num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

Status ShardedIngest::Accept(Bytes sealed_report) {
  size_t shard_index = ShardOfReport(sealed_report, config_.num_shards);
  return AcceptToShard(shard_index, std::move(sealed_report));
}

Status ShardedIngest::AcceptToShard(size_t shard_index, Bytes sealed_report) {
  return AcceptToShard(shard_index, std::move(sealed_report), ReportContext{}, nullptr);
}

Status ShardedIngest::AcceptToShard(size_t shard_index, Bytes sealed_report,
                                    ReportContext ctx,
                                    std::function<void(const Status&)>* done) {
  if (shard_index >= config_.num_shards) {
    return Error{"ingest: shard index out of range"};
  }
  bool size_trigger = false;
  {
    ReaderMutexLock epoch_lock(epoch_mu_);
    Shard& shard = *shards_[shard_index];
    MutexLock shard_lock(shard.mu);
    if (wal_ != nullptr) {
      // Unified durability: the report AND its ack commit become one WAL
      // record, so there is no window where one is durable without the
      // other.  The WAL consumes *done on success (it fires after the next
      // group commit); a failed append leaves it with the caller.
      Result<uint64_t> lsn = wal_->AppendReport(
          shard_index, current_epoch_.load(), sealed_report, ctx.session_id,
          ctx.seq, done);
      if (!lsn.ok()) {
        return lsn.error();  // not buffered: the client may retry
      }
    } else if (spool_ != nullptr) {
      Status status = spool_->Append(shard_index, current_epoch_.load(), sealed_report);
      if (!status.ok()) {
        return status;  // not ingested: the client may retry without duplicating
      }
    } else {
      shard.reports.push_back(std::move(sealed_report));
    }
    shard.count++;
    size_t total = current_total_.fetch_add(1) + 1;
    size_trigger = config_.max_epoch_reports > 0 && total >= config_.max_epoch_reports;
  }
  if (size_trigger) {
    // Re-checked under the exclusive lock: a racing Accept may have already
    // cut, in which case the epoch is fresh and below the trigger again.
    WriterMutexLock epoch_lock(epoch_mu_);
    if (config_.max_epoch_reports > 0 && current_total_.load() >= config_.max_epoch_reports) {
      Status status = SealCurrentLocked();
      if (status.ok()) {
        MutexLock sealed_lock(sealed_mu_);  // stats_ is guarded by sealed_mu_
        stats_.size_cuts++;
      }
      // A failed seal is NOT this report's failure: the report was already
      // durably appended (or stored in memory) above, so propagating the
      // error would tell the client "not ingested" and a retry would inject
      // a duplicate.  The epoch stays open with the failure recorded in
      // seal_failures/last_seal_error; the next Accept over the size
      // trigger, Tick(), or CutEpoch() retries the seal.
    }
  }
  return Status::Ok();
}

void ShardedIngest::RollbackAccepted(size_t shard_index, uint64_t epoch) {
  (void)epoch;  // WAL records always belong to the still-current epoch; see wal.h
  if (shard_index >= config_.num_shards) {
    return;
  }
  // No epoch lock here on purpose: a seal-time checkpoint holds epoch_mu_
  // exclusively while its flush (and thus this rollback) runs.  Shard counts
  // have their own mutex, and the epoch cannot advance mid-rollback because
  // advancing requires the same exclusive epoch_mu_ the checkpoint holds.
  Shard& shard = *shards_[shard_index];
  {
    MutexLock shard_lock(shard.mu);
    if (shard.count > 0) {
      shard.count--;
    }
  }
  size_t total = current_total_.load();
  while (total > 0 &&
         !current_total_.compare_exchange_weak(total, total - 1)) {
  }
}

void ShardedIngest::SetWal(IngestWal* wal) {
  WriterMutexLock epoch_lock(epoch_mu_);
  wal_ = wal;
}

Status ShardedIngest::Tick() {
  WriterMutexLock epoch_lock(epoch_mu_);
  current_age_++;
  if (config_.max_epoch_age == 0 || current_age_ < config_.max_epoch_age) {
    return Status::Ok();
  }
  size_t total = current_total_.load();
  if (total == 0 || total < config_.min_epoch_reports) {
    return Status::Ok();  // anonymity floor: an old-but-thin batch keeps waiting
  }
  // A failed seal (recorded by SealCurrentLocked) leaves the epoch open; the
  // error propagates so the frontend's Tick can report a wedged spool
  // instead of the failure silently vanishing.
  Status status = SealCurrentLocked();
  if (status.ok()) {
    MutexLock sealed_lock(sealed_mu_);  // stats_ is guarded by sealed_mu_
    stats_.age_cuts++;
  }
  return status;
}

Status ShardedIngest::CutEpoch(bool seal_if_empty) {
  WriterMutexLock epoch_lock(epoch_mu_);
  if (current_total_.load() == 0 && !seal_if_empty) {
    return Status::Ok();  // nothing to seal
  }
  return SealCurrentLocked();
}

Status ShardedIngest::SealCurrentLocked() {
  uint64_t epoch = current_epoch_.load();
  if (wal_ != nullptr) {
    // Checkpoint BEFORE snapshotting the shard counts: the checkpoint's
    // group-commit flush can fail and roll buffered reports back (which
    // decrements the counts), and its write-through is what puts the
    // epoch's buffered reports into the segments the manifest below will
    // describe.  After a successful checkpoint the WAL holds nothing for
    // this epoch, so the seal marker's claim is complete.
    Status status = wal_->Checkpoint();
    if (!status.ok()) {
      MutexLock sealed_lock(sealed_mu_);
      stats_.seal_failures++;
      stats_.last_seal_error = status.error().message;
      return status;
    }
  }
  EpochBatch batch;
  batch.epoch = epoch;
  batch.total = current_total_.load();
  batch.shard_counts.resize(config_.num_shards);
  if (spool_ == nullptr) {
    batch.shard_reports.resize(config_.num_shards);
  }
  // Snapshot the shard counts WITHOUT resetting them: the spool seal below
  // can fail, and a failed seal must leave the epoch fully intact so a
  // retry seals the same accounting (epoch_mu_ is held exclusively, so no
  // Accept can slip in between the snapshot and the commit).
  for (size_t s = 0; s < config_.num_shards; ++s) {
    Shard& shard = *shards_[s];
    MutexLock shard_lock(shard.mu);
    batch.shard_counts[s] = shard.count;
  }
  if (spool_ != nullptr) {
    Status status = spool_->SealEpoch(epoch);
    if (!status.ok()) {
      // Account the failure before propagating it: every failed seal is
      // visible in stats even if the caller drops the Status.
      MutexLock sealed_lock(sealed_mu_);
      stats_.seal_failures++;
      stats_.last_seal_error = status.error().message;
      return status;
    }
    if (wal_ != nullptr) {
      wal_->NoteEpochSealed(epoch);
    }
  }
  // Commit: the epoch is durably sealed (or in-memory); reset the shards.
  for (size_t s = 0; s < config_.num_shards; ++s) {
    Shard& shard = *shards_[s];
    MutexLock shard_lock(shard.mu);
    shard.count = 0;
    if (spool_ == nullptr) {
      batch.shard_reports[s] = std::move(shard.reports);
      shard.reports.clear();
    }
  }
  {
    MutexLock sealed_lock(sealed_mu_);
    stats_.accepted += batch.total;
    stats_.epochs_sealed++;
    sealed_.push_back(std::move(batch));
  }
  current_epoch_.fetch_add(1);
  current_total_.store(0);
  current_age_ = 0;
  if (seal_listener_) {
    // Under epoch_mu_ by construction (we are *Locked); the listener is
    // contractually lock-light (it nudges the drain scheduler's condition
    // variable), and nothing on the drain path re-enters the epoch lock
    // while holding the scheduler's.
    seal_listener_();
  }
  return Status::Ok();
}

void ShardedIngest::SetSealListener(std::function<void()> listener) {
  WriterMutexLock epoch_lock(epoch_mu_);
  seal_listener_ = std::move(listener);
}

std::optional<EpochBatch> ShardedIngest::PopSealedEpoch() {
  MutexLock lock(sealed_mu_);
  if (sealed_.empty()) {
    return std::nullopt;
  }
  EpochBatch batch = std::move(sealed_.front());
  sealed_.pop_front();
  return batch;
}

void ShardedIngest::RequeueSealedEpoch(EpochBatch batch) {
  MutexLock lock(sealed_mu_);
  sealed_.push_front(std::move(batch));
}

void ShardedIngest::RestoreFromRecovery(const Spool::RecoveryReport& recovery) {
  WriterMutexLock epoch_lock(epoch_mu_);
  // Group recovered segment counts by epoch.
  std::map<uint64_t, std::vector<size_t>> per_epoch;  // epoch -> shard counts
  for (const auto& segment : recovery.segments) {
    auto& counts = per_epoch[segment.epoch];
    if (counts.size() < config_.num_shards) {
      counts.resize(config_.num_shards, 0);
    }
    if (segment.shard < counts.size()) {
      counts[segment.shard] += segment.frames;
    }
  }

  // The newest unsealed epoch resumes accumulating; older unsealed epochs
  // (which cannot legally accept more reports) are sealed as-is.
  uint64_t next_epoch = 0;
  std::optional<uint64_t> resume_epoch;
  for (const auto& [epoch, counts] : per_epoch) {
    next_epoch = std::max(next_epoch, epoch + 1);
    if (recovery.sealed_epochs.count(epoch) == 0) {
      if (!resume_epoch.has_value() || epoch > *resume_epoch) {
        resume_epoch = epoch;
      }
    }
  }
  for (const auto& [epoch, counts] : per_epoch) {
    size_t total = 0;
    for (size_t c : counts) {
      total += c;
    }
    if (resume_epoch.has_value() && epoch == *resume_epoch) {
      // Resume even a zero-frame epoch (e.g. its only segment was a torn
      // tail, truncated away): new reports must land here, never in an
      // older epoch whose seal marker already exists.
      for (size_t s = 0; s < config_.num_shards && s < counts.size(); ++s) {
        MutexLock shard_lock(shards_[s]->mu);
        shards_[s]->count = counts[s];
      }
      current_epoch_.store(epoch);
      current_total_.store(total);
      current_age_ = 0;
      continue;
    }
    if (total == 0) {
      continue;  // empty sealed epoch: nothing to drain
    }
    EpochBatch batch;
    batch.epoch = epoch;
    batch.total = total;
    batch.shard_counts = counts;
    if (recovery.sealed_epochs.count(epoch) == 0 && spool_ != nullptr) {
      // An older unsealed epoch: seal it now so its marker exists.  A failed
      // seal must not vanish — the epoch still enters the drain queue (its
      // segments were recovered and are drainable), but without a marker
      // another crash would re-classify it, so the failure is recorded where
      // operators look for a wedged spool.
      Status sealed = spool_->SealEpoch(epoch);
      if (!sealed.ok()) {
        MutexLock sealed_lock(sealed_mu_);
        stats_.seal_failures++;
        stats_.last_seal_error = sealed.error().message;
      }
    }
    MutexLock sealed_lock(sealed_mu_);
    stats_.accepted += batch.total;
    stats_.epochs_sealed++;
    sealed_.push_back(std::move(batch));
  }
  if (!resume_epoch.has_value()) {
    current_epoch_.store(next_epoch);
    current_total_.store(0);
    current_age_ = 0;
  }
  bool recovered_sealed = false;
  {
    MutexLock sealed_lock(sealed_mu_);
    recovered_sealed = !sealed_.empty();
  }
  if (recovered_sealed && seal_listener_) {
    seal_listener_();  // recovered epochs should drain without a poll too
  }
}

IngestStats ShardedIngest::stats() const {
  MutexLock lock(sealed_mu_);
  IngestStats out = stats_;
  out.accepted += current_total_.load();
  return out;
}

}  // namespace prochlo

// The concurrent accept/drain runtime around ShufflerFrontend: the piece
// that turns the single-process ingestion tier into a standing service shape
// (ROADMAP: "per-shard worker threads draining Accept from lock-free rings
// ... multi-epoch drain overlap").
//
//   client threads ──Enqueue──► MpscRing per worker ──► worker thread
//                      (route by ciphertext hash;        └─ AcceptRoutedReport
//                       no shard mutex, no spool I/O          (shard locks +
//                       on the client thread)                  spool append)
//
//   drain thread  ──poll/nudge──► frontend.DrainSealedEpochs
//                       (drains sealed epoch e while the workers keep
//                        accumulating e+1 — the spool isolates them)
//
// Determinism: the runtime adds no randomness and the per-epoch pipeline RNG
// is derived from (seed, epoch), so for a fixed epoch membership the
// per-epoch histogram is bit-identical to the serial frontend at any worker
// count, ring size, and drain interleaving.  Epoch membership itself is
// fixed by cutting epochs at quiescent points (Flush() then CutEpoch/Tick);
// a size-cut racing concurrent producers seals *some* valid membership, and
// each epoch's result is still a pure function of the membership it got.
//
// Error contract (async mode): Enqueue returning Ok means "handed to the
// runtime", not yet "ingested".  A worker-side Accept failure means that
// report was NOT ingested; it is counted in stats().accept_failures with
// last_accept_error kept.  Flush() is the barrier that makes those outcomes
// visible: after it returns, every enqueued report is either ingested or
// counted as failed.
#ifndef PROCHLO_SRC_SERVICE_RUNTIME_H_
#define PROCHLO_SRC_SERVICE_RUNTIME_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/service/frontend.h"
#include "src/util/mpsc_ring.h"
#include "src/util/thread_annotations.h"

namespace prochlo {

struct WorkerPoolConfig {
  // Worker threads; 0 = synchronous (Enqueue ingests on the caller thread).
  size_t workers = 0;
  // Per-worker bounded ring capacity (rounded up to a power of two).  A full
  // ring back-pressures Enqueue (it spins/yields, counted in
  // stats().ring_full_waits) rather than dropping.
  size_t ring_capacity = 1024;
};

struct WorkerPoolStats {
  uint64_t enqueued = 0;  // reports handed to the runtime (counted at Enqueue)
  uint64_t accepted = 0;  // reports ingested
  // Reports handed to the runtime but NOT ingested (worker-side Accept
  // errors, or an Enqueue aborted by Stop).  Invariant once quiescent
  // (after Flush/Stop): enqueued == accepted + accept_failures.
  uint64_t accept_failures = 0;
  uint64_t ring_full_waits = 0;  // back-pressure episodes on Enqueue
  uint64_t frames_ok = 0;        // EnqueueFrameStream framing books
  uint64_t frames_corrupt = 0;
  uint64_t bytes_skipped = 0;
  std::string last_accept_error;
};

// Per-shard worker threads fed by bounded MPSC rings.  Shard s is owned by
// worker s % workers, so per-shard spool appends stay serialized (the spool
// requires it) while different shards ingest in parallel.
class IngestWorkerPool {
 public:
  IngestWorkerPool(ShufflerFrontend* frontend, WorkerPoolConfig config);
  ~IngestWorkerPool();

  IngestWorkerPool(const IngestWorkerPool&) = delete;
  IngestWorkerPool& operator=(const IngestWorkerPool&) = delete;

  void Start();
  // Joins the workers after they drain their rings, then ingests on the
  // caller thread any item an Enqueue raced in after a worker exited — a
  // report Enqueue returned Ok for is never dropped by shutdown.
  // Idempotent; the pool is one-shot (a stopped pool does not restart).
  void Stop();

  // Thread-safe.  Routes the report by ciphertext hash and enqueues it on
  // its shard's worker ring; blocks (yielding) while the ring is full.
  // With workers == 0, ingests synchronously and returns the Accept status.
  Status Enqueue(Bytes sealed_report);
  // Invoked exactly once with the report's final Accept outcome — on the
  // ingest worker thread after the durable spool append (async mode), on
  // the caller thread (synchronous mode), or with the abort error when the
  // pool is stopping.  The acknowledgment path hangs off this: a
  // FrameConnection ACKs a report from `done(Ok)`, so "acked" means
  // "durably spooled", never merely "handed to the runtime".
  using Completion = std::function<void(const Status&)>;
  void EnqueueAsync(Bytes sealed_report, Completion done);
  // Ack-protocol variant: `ctx` carries the report's (session, seq) so the
  // WAL-backed frontend can fuse the ack commit into the report's own
  // durable record.  Workers batch a run of ring items into the WAL and pay
  // one group-commit fsync for the whole run (BarrierIngest), after which
  // every item's `done` has fired — N concurrent reports, one fsync.
  void EnqueueAsync(Bytes sealed_report, ReportContext ctx, Completion done);
  // Decodes a buffer of wire frames on the caller thread (cheap: CRC only)
  // and enqueues each payload.  Corrupt frames are skipped with the books
  // kept in stats(), mirroring ShufflerFrontend::AcceptFrameStream.
  Status EnqueueFrameStream(ByteSpan stream);

  // Barrier: returns once every report enqueued so far has been ingested or
  // counted in accept_failures.  Does not block Enqueue from other threads;
  // reports enqueued after Flush begins may or may not be covered.
  Status Flush();

  WorkerPoolStats stats() const;
  size_t workers() const { return workers_.size(); }

 private:
  struct Item {
    size_t shard = 0;
    Bytes report;
    ReportContext ctx;  // (session, seq) for the unified WAL record
    Completion done;    // may be null (plain Enqueue)
  };

  struct Worker {
    explicit Worker(size_t ring_capacity) : ring(ring_capacity) {}
    MpscRing<Item> ring;
    std::thread thread;
    // Enqueued-but-not-yet-processed items.  Incremented seq_cst BEFORE the
    // producer's stopping_ check (so Stop's straggler drain is guaranteed
    // to see any producer that missed the stop flag), decremented with
    // release after processing (so a Flush() observing 0 also observes
    // every Accept's side effects).
    std::atomic<uint64_t> pending{0};
    // Sleep/wake handshake: the worker sets `asleep` before a bounded wait;
    // producers take wake_mu and notify only when the flag is up, so the
    // hot enqueue path never touches the mutex and an idle pool costs a
    // handful of fallback wakeups per second instead of a 200 µs spin.
    Mutex wake_mu;
    CondVar wake_cv;
    std::atomic<bool> asleep{false};

    void WakeIfAsleep() {
      if (asleep.load(std::memory_order_relaxed)) {
        MutexLock lock(wake_mu);
        wake_cv.NotifyOne();
      }
    }
  };

  void WorkerLoop(Worker& worker);
  void RecordAccept(const Status& status);
  // Shared body of Enqueue/EnqueueAsync: the return value is Enqueue's
  // contract ("handed to the runtime" / sync Accept status); `done`, when
  // set, fires exactly once with the report's final outcome on every path.
  Status EnqueueImpl(Bytes sealed_report, ReportContext ctx, Completion done);

  ShufflerFrontend* frontend_;  // borrowed
  WorkerPoolConfig config_;
  size_t num_shards_ = 1;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  mutable Mutex stats_mu_;  // guards the non-atomic stats fields
  std::atomic<uint64_t> enqueued_{0};
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> accept_failures_{0};
  std::atomic<uint64_t> ring_full_waits_{0};
  std::atomic<uint64_t> frames_ok_{0};
  std::atomic<uint64_t> frames_corrupt_{0};
  std::atomic<uint64_t> bytes_skipped_{0};
  std::string last_accept_error_ GUARDED_BY(stats_mu_);
};

struct DrainSchedulerConfig {
  // Fallback poll cadence of the background drain thread.  The primary
  // wakeup is the seal event: Start() registers a listener the ingest tier
  // fires from SealCurrentLocked, so a sealed epoch begins draining
  // immediately — a busy box never spins on this interval and an idle box
  // adds no seal-to-drain latency.  The poll only bounds the retry latency
  // of a failed drain and guards against a lost nudge.  RequestDrain()
  // still nudges sooner.
  std::chrono::milliseconds poll_interval{250};
};

struct DrainSchedulerStats {
  uint64_t drain_calls = 0;
  uint64_t epochs_drained = 0;
  uint64_t drain_failures = 0;
  std::string last_drain_error;
};

// Background drain thread: overlaps draining sealed epoch e with the worker
// pool accumulating epoch e+1.  Owns all DrainSealedEpochs calls while
// running (the frontend allows one drainer at a time), and owns the
// frontend's seal listener between Start() and Stop().
class DrainScheduler {
 public:
  DrainScheduler(ShufflerFrontend* frontend, DrainSchedulerConfig config = {});
  ~DrainScheduler();

  DrainScheduler(const DrainScheduler&) = delete;
  DrainScheduler& operator=(const DrainScheduler&) = delete;

  void Start();
  // Unregisters the seal listener, performs one final drain pass, then
  // joins the thread.  Idempotent.
  void Stop();

  // Nudges the drain thread to run ahead of its poll cadence.
  void RequestDrain();

  // Results drained since the last TakeResults, in drain order.
  std::vector<EpochResult> TakeResults();
  // Blocks until `n` epochs have been drained in total (across TakeResults
  // calls) or `timeout` elapses; returns whether the target was reached.
  bool WaitForDrainedEpochs(size_t n, std::chrono::milliseconds timeout);

  DrainSchedulerStats stats() const;

 private:
  void DrainLoop();
  void DrainOnce();

  ShufflerFrontend* frontend_;  // borrowed
  DrainSchedulerConfig config_;
  // Start/Stop run on one owning thread by contract; the handle and flag
  // are never touched from the drain thread, so they need no lock.
  std::thread thread_;
  bool started_ = false;

  mutable Mutex mu_;
  CondVar wake_cv_;     // poll/nudge/stop
  CondVar drained_cv_;  // WaitForDrainedEpochs
  bool stop_ GUARDED_BY(mu_) = false;
  bool drain_requested_ GUARDED_BY(mu_) = false;
  std::vector<EpochResult> results_ GUARDED_BY(mu_);
  size_t drained_total_ GUARDED_BY(mu_) = 0;
  DrainSchedulerStats stats_ GUARDED_BY(mu_);
};

}  // namespace prochlo

#endif  // PROCHLO_SRC_SERVICE_RUNTIME_H_

#include "src/service/spool.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <tuple>

#include "src/service/wire.h"
#include "src/util/serialization.h"

namespace prochlo {

namespace fs = std::filesystem;

// ------------------------------------------------------------ SegmentWriter

SegmentWriter::~SegmentWriter() {
  if (fd_ >= 0) {
    fs_->Close(fd_);
  }
}

Result<std::unique_ptr<SegmentWriter>> SegmentWriter::Open(const std::string& path, Fs* fs) {
  if (fs == nullptr) {
    fs = Fs::Real();
  }
  auto fd = fs->Open(path, O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (!fd.ok()) {
    return Error{"spool: cannot open segment " + path + ": " + fd.error().message};
  }
  return std::unique_ptr<SegmentWriter>(new SegmentWriter(path, fd.value(), fs));
}

Status SegmentWriter::Append(ByteSpan report) {
  if (report.size() > kMaxFramePayload) {
    // Never write a frame the reader is specified to reject: it would read
    // as a torn tail and truncate away on the next recovery.
    return Error{"spool: report exceeds the frame payload limit"};
  }
  Bytes frame = EncodeFrame(report);
  size_t done = 0;
  while (done < frame.size()) {
    auto n = fs_->Write(fd_, ByteSpan(frame).subspan(done));
    if (!n.ok()) {
      // A short write followed by failure leaves a torn frame at the tail;
      // that is exactly what recovery's clean-prefix truncation repairs.
      return Error{"spool: write failed on " + path_ + ": " + n.error().message};
    }
    if (n.value() == 0) {
      return Error{"spool: write made no progress on " + path_};
    }
    done += n.value();
  }
  frames_++;
  bytes_ += frame.size();
  return Status::Ok();
}

Status SegmentWriter::Sync() {
  Status status = fs_->Sync(fd_);
  if (!status.ok()) {
    return Error{"spool: fsync failed on " + path_ + ": " + status.error().message};
  }
  return Status::Ok();
}

// -------------------------------------------------------------------- Spool

std::string SpoolSegmentPath(const std::string& root, size_t shard, uint64_t epoch) {
  return root + "/shard-" + std::to_string(shard) + "-epoch-" + std::to_string(epoch) +
         ".seg";
}

std::string SpoolMarkerPath(const std::string& root, uint64_t epoch) {
  return root + "/epoch-" + std::to_string(epoch) + ".sealed";
}

std::string SpoolManifestPath(const std::string& root, uint64_t epoch) {
  return root + "/epoch-" + std::to_string(epoch) + ".manifest";
}

std::string Spool::SegmentPath(size_t shard, uint64_t epoch) const {
  return SpoolSegmentPath(config_.root, shard, epoch);
}

std::string Spool::MarkerPath(uint64_t epoch) const {
  return SpoolMarkerPath(config_.root, epoch);
}

std::string Spool::ManifestPath(uint64_t epoch) const {
  return SpoolManifestPath(config_.root, epoch);
}

namespace {

// Parsed manifest: shard -> (frames, bytes).  nullopt on any defect —
// missing file, torn bytes, CRC mismatch, wrong epoch, trailing garbage —
// in which case recovery falls back to the frame-by-frame scan.
using ManifestEntries = std::map<uint64_t, std::pair<uint64_t, uint64_t>>;

std::optional<ManifestEntries> ReadManifestFile(const std::string& path, uint64_t epoch) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return std::nullopt;
  }
  Bytes data;
  uint8_t buffer[4096];
  size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    data.insert(data.end(), buffer, buffer + got);
  }
  std::fclose(f);
  auto payload = DecodeFrame(data);
  if (!payload.ok() || data.size() != FrameWireSize(payload.value().size())) {
    return std::nullopt;
  }
  Reader reader(payload.value());
  uint64_t manifest_epoch = 0;
  uint32_t count = 0;
  if (!reader.GetU64(&manifest_epoch) || manifest_epoch != epoch ||
      !reader.GetU32(&count)) {
    return std::nullopt;
  }
  ManifestEntries entries;
  for (uint32_t i = 0; i < count; ++i) {
    uint64_t shard = 0;
    uint64_t frames = 0;
    uint64_t bytes = 0;
    if (!reader.GetU64(&shard) || !reader.GetU64(&frames) || !reader.GetU64(&bytes)) {
      return std::nullopt;
    }
    entries[shard] = {frames, bytes};
  }
  if (reader.remaining() != 0) {
    return std::nullopt;
  }
  return entries;
}

}  // namespace

Result<Spool::RecoveryReport> Spool::Open() {
  MutexLock lock(mu_);
  std::error_code ec;
  fs::create_directories(config_.root, ec);
  if (ec) {
    return Error{"spool: cannot create root " + config_.root + ": " + ec.message()};
  }

  RecoveryReport report;
  struct PendingSegment {
    size_t shard = 0;
    uint64_t epoch = 0;
    uintmax_t size = 0;
    std::string path;
    std::string name;
  };
  std::vector<PendingSegment> pending;
  std::set<uint64_t> manifest_epochs;
  for (const auto& entry : fs::directory_iterator(config_.root, ec)) {
    std::string name = entry.path().filename().string();
    uint64_t epoch = 0;
    // Match the suffix explicitly: sscanf("epoch-%lu.sealed") would return 1
    // for "epoch-5.manifest" too (the conversion succeeds before the literal
    // mismatch stops the scan), silently sealing the wrong epochs.
    char suffix[16] = {0};
    if (std::sscanf(name.c_str(), "epoch-%lu.%15s", &epoch, suffix) == 2) {
      if (std::strcmp(suffix, "sealed") == 0) {
        report.sealed_epochs.insert(epoch);
        continue;
      }
      if (std::strcmp(suffix, "manifest") == 0) {
        manifest_epochs.insert(epoch);
        continue;
      }
    }
    unsigned long shard = 0;
    if (std::sscanf(name.c_str(), "shard-%lu-epoch-%lu.seg", &shard, &epoch) != 2) {
      continue;  // foreign file; leave it alone
    }
    std::error_code size_ec;
    uintmax_t file_size = fs::file_size(entry.path(), size_ec);
    if (size_ec) {
      return Error{"spool: cannot stat " + name};
    }
    pending.push_back({shard, epoch, file_size, entry.path().string(), name});
  }

  // One manifest read per sealed epoch replaces the per-segment scans below
  // whenever the recorded byte size still matches the file exactly.
  std::map<uint64_t, ManifestEntries> manifests;
  for (uint64_t epoch : manifest_epochs) {
    if (report.sealed_epochs.count(epoch) == 0) {
      continue;  // no marker: the epoch is not sealed, scan its segments
    }
    auto entries = ReadManifestFile(ManifestPath(epoch), epoch);
    if (entries.has_value()) {
      manifests.emplace(epoch, std::move(*entries));
    }
  }

  for (const PendingSegment& segment : pending) {
    const std::string& name = segment.name;
    uintmax_t file_size = segment.size;
    if (report.sealed_epochs.count(segment.epoch) > 0) {
      auto manifest = manifests.find(segment.epoch);
      const std::pair<uint64_t, uint64_t>* recorded = nullptr;
      if (manifest != manifests.end()) {
        auto entry = manifest->second.find(segment.shard);
        if (entry != manifest->second.end()) {
          recorded = &entry->second;
        }
      }
      if (recorded != nullptr && recorded->second == file_size) {
        report.manifest_hits++;
        SegmentInfo info;
        info.shard = segment.shard;
        info.epoch = segment.epoch;
        info.frames = recorded->first;
        info.bytes = file_size;
        info.path = segment.path;
        frame_counts_[{segment.epoch, segment.shard}] = recorded->first;
        report.segments.push_back(std::move(info));
        continue;
      }
      report.manifest_fallbacks++;
    }

    // Scan the segment's frames with a bounded buffer — one frame resident
    // at a time, so recovering a larger-than-RAM segment stays O(1) in
    // memory — and truncate at the clean prefix: the append-only discipline
    // means everything past the first tear is suspect.
    uint64_t frames = 0;
    uintmax_t clean_end = 0;
    {
      std::FILE* f = std::fopen(segment.path.c_str(), "rb");
      if (f == nullptr) {
        return Error{"spool: cannot read " + name};
      }
      Bytes frame;
      while (true) {
        uint8_t header[kFrameHeaderSize];
        size_t got = std::fread(header, 1, sizeof(header), f);
        if (got < sizeof(header)) {
          // Clean EOF (got == 0) or torn header — except that a first
          // "frame" too short for this version's header can also be a
          // whole tiny segment from an *older* wire version, which must
          // not be "recovered" to zero bytes (see the version check
          // below).  Magic is at offset 0, version at 4 in every version.
          if (frames == 0 && got >= 5) {
            uint32_t magic = static_cast<uint32_t>(header[0]) |
                             static_cast<uint32_t>(header[1]) << 8 |
                             static_cast<uint32_t>(header[2]) << 16 |
                             static_cast<uint32_t>(header[3]) << 24;
            if (magic == kFrameMagic && header[4] != kWireVersion) {
              std::fclose(f);
              return Error{"spool: segment " + name + " has unsupported wire version " +
                           std::to_string(header[4]) + "; refusing to truncate"};
            }
          }
          break;
        }
        FrameHeader parsed;
        if (!ParseFrameHeader(ByteSpan(header, sizeof(header)), &parsed)) {
          break;
        }
        if (!PlausibleFrameHeader(parsed)) {
          // A whole segment in a *different* wire version is not a torn
          // tail: truncating it would destroy durably acknowledged reports
          // wholesale.  Refuse to open and leave the data for the operator
          // (or a migration tool) instead of "recovering" it to zero bytes.
          if (frames == 0 && parsed.magic == kFrameMagic &&
              parsed.version != kWireVersion) {
            std::fclose(f);
            return Error{"spool: segment " + name + " has unsupported wire version " +
                         std::to_string(parsed.version) + "; refusing to truncate"};
          }
          break;
        }
        frame.resize(kFrameHeaderSize + parsed.length);
        std::memcpy(frame.data(), header, sizeof(header));
        if (std::fread(frame.data() + kFrameHeaderSize, 1, parsed.length, f) !=
            parsed.length) {
          break;  // torn payload
        }
        if (!DecodeFrame(frame).ok()) {
          break;  // CRC mismatch
        }
        frames++;
        clean_end += FrameWireSize(parsed.length);
      }
      std::fclose(f);
    }
    if (clean_end < file_size) {
      report.corrupt_frames++;  // at least one frame lost in the torn tail
      report.truncated_bytes += file_size - clean_end;
      Status truncated = fs_->Truncate(segment.path, clean_end);
      if (!truncated.ok()) {
        return Error{"spool: cannot truncate " + name + ": " + truncated.error().message};
      }
    }

    SegmentInfo info;
    info.shard = segment.shard;
    info.epoch = segment.epoch;
    info.frames = frames;
    info.bytes = clean_end;
    info.path = segment.path;
    frame_counts_[{segment.epoch, segment.shard}] = frames;
    report.segments.push_back(std::move(info));
  }

  std::sort(report.segments.begin(), report.segments.end(),
            [](const SegmentInfo& a, const SegmentInfo& b) {
              return std::tie(a.epoch, a.shard) < std::tie(b.epoch, b.shard);
            });
  return report;
}

Status Spool::Append(size_t shard, uint64_t epoch, ByteSpan report) {
  SegmentWriter* writer = nullptr;
  {
    MutexLock lock(mu_);
    auto key = std::make_pair(epoch, shard);
    auto it = writers_.find(key);
    if (it == writers_.end()) {
      auto opened = SegmentWriter::Open(SegmentPath(shard, epoch), fs_);
      if (!opened.ok()) {
        return opened.error();
      }
      it = writers_.emplace(key, std::move(opened).value()).first;
    }
    writer = it->second.get();
  }
  // Per-shard appends are serialized by the caller (ingest holds the shard
  // lock), so writing outside mu_ is safe and keeps shards independent.
  Status status = writer->Append(report);
  if (status.ok()) {
    MutexLock lock(mu_);
    frame_counts_[{epoch, shard}]++;
  }
  return status;
}

Status Spool::SyncAll() {
  MutexLock lock(mu_);
  for (auto& [key, writer] : writers_) {
    Status status = writer->Sync();
    if (!status.ok()) {
      return status;
    }
  }
  return Status::Ok();
}

Status Spool::SealEpoch(uint64_t epoch) {
  MutexLock lock(mu_);
  // Sync and close every segment of the epoch first...
  for (auto it = writers_.begin(); it != writers_.end();) {
    if (it->first.first != epoch) {
      ++it;
      continue;
    }
    if (config_.fsync_on_seal) {
      Status status = it->second->Sync();
      if (!status.ok()) {
        return status;
      }
    }
    it = writers_.erase(it);  // destructor closes the fd
  }
  // ...then the manifest (recovery's one-read fast path; a crash that loses
  // it merely falls back to the scan)...
  Status manifest = WriteManifestLocked(epoch);
  if (!manifest.ok()) {
    return manifest;
  }
  // ...then write the marker, so its presence implies complete segments.
  std::string marker = MarkerPath(epoch);
  auto fd = fs_->Open(marker, O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (!fd.ok()) {
    return Error{"spool: cannot write marker " + marker + ": " + fd.error().message};
  }
  Status result = Status::Ok();
  if (config_.fsync_on_seal) {
    result = fs_->Sync(fd.value());
    if (!result.ok()) {
      // An unfsynced marker may vanish in a crash, silently unsealing the
      // epoch; surface the failure so the frontend retries the seal.
      result = Error{"spool: cannot fsync marker " + marker + ": " + result.error().message};
    }
  }
  fs_->Close(fd.value());
  if (result.ok() && config_.fsync_on_seal) {
    // fsync(marker fd) persisted the marker's bytes, not its *name*: the
    // dirent for a freshly created file lives in the directory, and losing
    // it in a crash silently unseals the epoch.  One directory fsync covers
    // the marker and the manifest created just above.
    result = fs_->SyncDir(config_.root);
  }
  return result;
}

Status Spool::TruncateSegmentTo(size_t shard, uint64_t epoch, uint64_t target_bytes,
                                uint64_t frames_removed) {
  MutexLock lock(mu_);
  // Close any open writer first: its fd position and byte counter are stale
  // once the file shrinks under it, and the next Append reopens at the
  // (truncated) end via O_APPEND.
  writers_.erase({epoch, shard});
  Status truncated = fs_->Truncate(SegmentPath(shard, epoch), target_bytes);
  if (!truncated.ok()) {
    return truncated;
  }
  auto it = frame_counts_.find({epoch, shard});
  if (it != frame_counts_.end()) {
    it->second = it->second >= frames_removed ? it->second - frames_removed : 0;
  }
  return Status::Ok();
}

Status Spool::WriteManifestLocked(uint64_t epoch) {
  Writer w;
  w.PutU64(epoch);
  std::vector<std::tuple<uint64_t, uint64_t, uint64_t>> entries;
  for (auto it = frame_counts_.lower_bound({epoch, 0});
       it != frame_counts_.end() && it->first.first == epoch; ++it) {
    std::error_code size_ec;
    uintmax_t size = fs::file_size(SegmentPath(it->first.second, epoch), size_ec);
    if (size_ec) {
      // The manifest is purely recovery's fast path: a sealed epoch without
      // one falls back to the frame-by-frame scan.  An unstatable segment
      // (e.g. the directory was wedged and recreated around still-open fds)
      // must therefore skip the manifest, not fail the seal.
      return Status::Ok();
    }
    entries.emplace_back(it->first.second, it->second, size);
  }
  w.PutU32(static_cast<uint32_t>(entries.size()));
  for (const auto& [shard, frames, bytes] : entries) {
    w.PutU64(shard);
    w.PutU64(frames);
    w.PutU64(bytes);
  }
  // The manifest rides in an ordinary wire frame: the CRC that guards spool
  // segments guards it too, and a torn write fails decode instead of being
  // believed.
  Bytes frame = EncodeFrame(w.Take());
  std::string path = ManifestPath(epoch);
  auto fd = fs_->Open(path, O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (!fd.ok()) {
    return Error{"spool: cannot write manifest " + path + ": " + fd.error().message};
  }
  size_t done = 0;
  while (done < frame.size()) {
    auto n = fs_->Write(fd.value(), ByteSpan(frame).subspan(done));
    if (!n.ok() || n.value() == 0) {
      fs_->Close(fd.value());
      return Error{"spool: write failed on manifest " + path +
                   (n.ok() ? "" : ": " + n.error().message)};
    }
    done += n.value();
  }
  Status result = Status::Ok();
  if (config_.fsync_on_seal) {
    result = fs_->Sync(fd.value());
    if (!result.ok()) {
      result = Error{"spool: cannot fsync manifest " + path + ": " +
                     result.error().message};
    }
  }
  fs_->Close(fd.value());
  return result;
}

uint64_t Spool::FrameCount(size_t shard, uint64_t epoch) const {
  MutexLock lock(mu_);
  auto it = frame_counts_.find({epoch, shard});
  return it == frame_counts_.end() ? 0 : it->second;
}

uint64_t Spool::EpochFrameCount(uint64_t epoch) const {
  MutexLock lock(mu_);
  uint64_t total = 0;
  for (auto it = frame_counts_.lower_bound({epoch, 0});
       it != frame_counts_.end() && it->first.first == epoch; ++it) {
    total += it->second;
  }
  return total;
}

namespace {

// RecordStream over an epoch's segment files, one frame read at a time.
class SpoolEpochStream : public RecordStream {
 public:
  SpoolEpochStream(std::vector<std::string> paths, size_t total)
      : paths_(std::move(paths)), total_(total) {}

  ~SpoolEpochStream() override { CloseCurrent(); }

  size_t size() const override { return total_; }

  std::optional<Bytes> Next() override {
    while (true) {
      if (file_ == nullptr) {
        if (next_path_ >= paths_.size()) {
          return std::nullopt;
        }
        file_ = std::fopen(paths_[next_path_].c_str(), "rb");
        next_path_++;
        if (file_ == nullptr) {
          continue;  // segment absent (empty shard): move on
        }
      }
      auto payload = ReadFrame();
      if (payload.has_value()) {
        return payload;
      }
      CloseCurrent();
    }
  }

  void Reset() override {
    CloseCurrent();
    next_path_ = 0;
  }

 private:
  void CloseCurrent() {
    if (file_ != nullptr) {
      std::fclose(file_);
      file_ = nullptr;
    }
  }

  // Reads one frame from the current file; nullopt at EOF or on a torn
  // frame (recovery has already truncated sealed segments, so a tear here
  // means the file changed underneath us — stop cleanly).
  std::optional<Bytes> ReadFrame() {
    uint8_t header[kFrameHeaderSize];
    if (std::fread(header, 1, sizeof(header), file_) != sizeof(header)) {
      return std::nullopt;
    }
    FrameHeader parsed;
    if (!ParseFrameHeader(ByteSpan(header, sizeof(header)), &parsed) ||
        !PlausibleFrameHeader(parsed)) {
      return std::nullopt;
    }
    Bytes frame(kFrameHeaderSize + parsed.length);
    std::memcpy(frame.data(), header, sizeof(header));
    if (std::fread(frame.data() + kFrameHeaderSize, 1, parsed.length, file_) !=
        parsed.length) {
      return std::nullopt;
    }
    auto decoded = DecodeFrame(frame);
    if (!decoded.ok()) {
      return std::nullopt;
    }
    return std::move(decoded).value();
  }

  std::vector<std::string> paths_;
  size_t total_;
  size_t next_path_ = 0;
  std::FILE* file_ = nullptr;
};

}  // namespace

std::unique_ptr<RecordStream> Spool::OpenEpochStream(uint64_t epoch) {
  MutexLock lock(mu_);
  std::vector<std::string> paths;
  size_t total = 0;
  for (auto it = frame_counts_.lower_bound({epoch, 0});
       it != frame_counts_.end() && it->first.first == epoch; ++it) {
    if (it->second == 0) {
      continue;
    }
    paths.push_back(SegmentPath(it->first.second, epoch));
    total += it->second;
  }
  return std::make_unique<SpoolEpochStream>(std::move(paths), total);
}

Status Spool::RemoveEpoch(uint64_t epoch) {
  MutexLock lock(mu_);
  Status result = Status::Ok();
  for (auto it = frame_counts_.lower_bound({epoch, 0});
       it != frame_counts_.end() && it->first.first == epoch;) {
    writers_.erase(it->first);
    // A missing file is fine (Fs::Remove treats ENOENT as success); an
    // actual failure (e.g. EACCES) leaves the segment behind, where a
    // restart would replay it as a duplicate epoch — surface the first one.
    // The failed entry stays tracked so a RemoveEpoch retry re-attempts
    // this segment's unlink rather than finding nothing to do.
    Status removed = fs_->Remove(SegmentPath(it->first.second, epoch));
    if (!removed.ok()) {
      if (result.ok()) {
        result = Error{"spool: cannot remove segment for epoch " + std::to_string(epoch) +
                       ": " + removed.error().message};
      }
      ++it;
      continue;
    }
    it = frame_counts_.erase(it);
  }
  Status manifest_removed = fs_->Remove(ManifestPath(epoch));
  if (!manifest_removed.ok() && result.ok()) {
    result = Error{"spool: cannot remove manifest for epoch " + std::to_string(epoch) +
                   ": " + manifest_removed.error().message};
  }
  Status removed = fs_->Remove(MarkerPath(epoch));
  if (!removed.ok() && result.ok()) {
    result = Error{"spool: cannot remove marker for epoch " + std::to_string(epoch) + ": " +
                   removed.error().message};
  }
  return result;
}

}  // namespace prochlo

#include "src/service/wire.h"

#include <algorithm>
#include <array>
#include <cassert>

#include "src/util/serialization.h"

namespace prochlo {

namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

uint32_t Crc32Update(uint32_t crc, ByteSpan data) {
  static const std::array<uint32_t, 256> table = BuildCrcTable();
  for (uint8_t byte : data) {
    crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8);
  }
  return crc;
}

// CRC over version || type || seq || length || payload, the frame's
// integrity span — everything after the magic.
uint32_t FrameCrc(uint8_t version, uint8_t type, uint64_t seq, uint32_t length,
                  ByteSpan payload) {
  std::array<uint8_t, 14> head = {
      version,
      type,
      static_cast<uint8_t>(seq),
      static_cast<uint8_t>(seq >> 8),
      static_cast<uint8_t>(seq >> 16),
      static_cast<uint8_t>(seq >> 24),
      static_cast<uint8_t>(seq >> 32),
      static_cast<uint8_t>(seq >> 40),
      static_cast<uint8_t>(seq >> 48),
      static_cast<uint8_t>(seq >> 56),
      static_cast<uint8_t>(length),
      static_cast<uint8_t>(length >> 8),
      static_cast<uint8_t>(length >> 16),
      static_cast<uint8_t>(length >> 24),
  };
  uint32_t crc = Crc32Update(0xFFFFFFFFu, ByteSpan(head.data(), head.size()));
  return Crc32Update(crc, payload) ^ 0xFFFFFFFFu;
}

}  // namespace

uint32_t Crc32(ByteSpan data) {
  return Crc32Update(0xFFFFFFFFu, data) ^ 0xFFFFFFFFu;
}

bool ParseFrameHeader(ByteSpan data, FrameHeader* out) {
  Reader reader(data);
  return reader.GetU32(&out->magic) && reader.GetU8(&out->version) &&
         reader.GetU8(&out->type) && reader.GetU64(&out->seq) &&
         reader.GetU32(&out->length) && reader.GetU32(&out->crc);
}

void AppendFrame(Bytes& out, FrameType type, uint64_t seq, ByteSpan payload) {
  // Producing a frame the decoder is specified to reject is a caller bug.
  assert(payload.size() <= kMaxFramePayload);
  Writer w;
  w.PutU32(kFrameMagic);
  w.PutU8(kWireVersion);
  w.PutU8(static_cast<uint8_t>(type));
  w.PutU64(seq);
  w.PutU32(static_cast<uint32_t>(payload.size()));
  w.PutU32(FrameCrc(kWireVersion, static_cast<uint8_t>(type), seq,
                    static_cast<uint32_t>(payload.size()), payload));
  w.PutBytes(payload);
  Bytes frame = w.Take();
  out.insert(out.end(), frame.begin(), frame.end());
}

void AppendFrame(Bytes& out, ByteSpan payload) {
  AppendFrame(out, FrameType::kReport, 0, payload);
}

Bytes EncodeFrame(ByteSpan payload) { return EncodeReportFrame(0, payload); }

Bytes EncodeReportFrame(uint64_t seq, ByteSpan payload) {
  Bytes out;
  out.reserve(FrameWireSize(payload.size()));
  AppendFrame(out, FrameType::kReport, seq, payload);
  return out;
}

Bytes EncodeAckFrame(uint64_t seq) {
  Bytes out;
  out.reserve(FrameWireSize(0));
  AppendFrame(out, FrameType::kAck, seq, ByteSpan());
  return out;
}

Bytes EncodeNackFrame(uint64_t seq, const std::string& message) {
  return EncodeNackFrame(seq, NackReason::kRetryable, message);
}

Bytes EncodeNackFrame(uint64_t seq, NackReason reason, const std::string& message) {
  if (reason == NackReason::kSessionExpired) {
    // Expired NACK payloads always carry the session stamp (0 = unstamped)
    // so ParseNackPayload never has to guess where the message starts.
    return EncodeSessionExpiredNackFrame(seq, 0, message);
  }
  Bytes payload;
  payload.reserve(1 + message.size());
  payload.push_back(static_cast<uint8_t>(reason));
  payload.insert(payload.end(), message.begin(), message.end());
  Bytes out;
  out.reserve(FrameWireSize(payload.size()));
  AppendFrame(out, FrameType::kNack, seq, payload);
  return out;
}

Bytes EncodeSessionExpiredNackFrame(uint64_t seq, uint64_t session_id,
                                    const std::string& message) {
  Bytes payload;
  payload.reserve(9 + message.size());
  payload.push_back(static_cast<uint8_t>(NackReason::kSessionExpired));
  for (int i = 0; i < 8; ++i) {
    payload.push_back(static_cast<uint8_t>(session_id >> (8 * i)));
  }
  payload.insert(payload.end(), message.begin(), message.end());
  Bytes out;
  out.reserve(FrameWireSize(payload.size()));
  AppendFrame(out, FrameType::kNack, seq, payload);
  return out;
}

NackInfo ParseNackPayload(ByteSpan payload) {
  NackInfo info;
  if (payload.empty()) {
    return info;
  }
  uint8_t reason = payload[0];
  if (reason >= static_cast<uint8_t>(NackReason::kRetryable) &&
      reason <= static_cast<uint8_t>(NackReason::kMisrouted)) {
    info.reason = static_cast<NackReason>(reason);
    size_t message_start = 1;
    if (info.reason == NackReason::kSessionExpired && payload.size() >= 9) {
      // The expired session's id rides after the reason byte (see
      // NackInfo::session_id); a short payload is an unstamped legacy NACK.
      for (int i = 0; i < 8; ++i) {
        info.session_id |= static_cast<uint64_t>(payload[1 + i]) << (8 * i);
      }
      message_start = 9;
    } else if (info.reason == NackReason::kMisrouted && payload.size() >= 17) {
      // Owning group then map version, LE u64 each (see
      // NackInfo::redirect_group); short payloads degrade to 0/0.
      for (int i = 0; i < 8; ++i) {
        info.redirect_group |= static_cast<uint64_t>(payload[1 + i]) << (8 * i);
        info.map_version |= static_cast<uint64_t>(payload[9 + i]) << (8 * i);
      }
      message_start = 17;
    }
    info.message.assign(payload.begin() + message_start, payload.end());
  } else {
    // Unknown reason byte (version skew): the whole payload is the message
    // and the safe fallback — plain resend — applies.
    info.message.assign(payload.begin(), payload.end());
  }
  return info;
}

Bytes EncodeMisroutedNackFrame(uint64_t seq, uint64_t target_group,
                               uint64_t map_version, const std::string& message) {
  Bytes payload;
  payload.reserve(17 + message.size());
  payload.push_back(static_cast<uint8_t>(NackReason::kMisrouted));
  for (int i = 0; i < 8; ++i) {
    payload.push_back(static_cast<uint8_t>(target_group >> (8 * i)));
  }
  for (int i = 0; i < 8; ++i) {
    payload.push_back(static_cast<uint8_t>(map_version >> (8 * i)));
  }
  payload.insert(payload.end(), message.begin(), message.end());
  Bytes out;
  out.reserve(FrameWireSize(payload.size()));
  AppendFrame(out, FrameType::kNack, seq, payload);
  return out;
}

Bytes EncodeGroupMapFrame(uint64_t version, ByteSpan map_payload) {
  Bytes out;
  out.reserve(FrameWireSize(map_payload.size()));
  AppendFrame(out, FrameType::kGroupMap, version, map_payload);
  return out;
}

Bytes EncodeHelloFrame(uint64_t session_id) {
  Bytes out;
  out.reserve(FrameWireSize(0));
  AppendFrame(out, FrameType::kHello, session_id, ByteSpan());
  return out;
}

Bytes EncodeGoodbyeFrame(uint64_t seq) {
  Bytes out;
  out.reserve(FrameWireSize(0));
  AppendFrame(out, FrameType::kGoodbye, seq, ByteSpan());
  return out;
}

Result<Frame> DecodeTypedFrame(ByteSpan frame) {
  Reader reader(frame);
  uint32_t magic = 0;
  uint8_t version = 0;
  uint8_t type = 0;
  uint64_t seq = 0;
  uint32_t length = 0;
  uint32_t crc = 0;
  if (!reader.GetU32(&magic) || !reader.GetU8(&version) || !reader.GetU8(&type) ||
      !reader.GetU64(&seq) || !reader.GetU32(&length) || !reader.GetU32(&crc)) {
    return Error{"frame header truncated"};
  }
  if (magic != kFrameMagic) {
    return Error{"bad frame magic"};
  }
  if (version != kWireVersion) {
    return Error{"unsupported frame version"};
  }
  if (!IsKnownFrameType(type)) {
    return Error{"unknown frame type"};
  }
  if (length > kMaxFramePayload) {
    return Error{"frame length exceeds limit"};
  }
  if (reader.remaining() < length) {
    return Error{"frame payload truncated"};
  }
  Frame out;
  out.type = static_cast<FrameType>(type);
  out.seq = seq;
  reader.GetBytes(length, &out.payload);
  if (FrameCrc(version, type, seq, length, out.payload) != crc) {
    return Error{"frame CRC mismatch"};
  }
  return out;
}

Result<Bytes> DecodeFrame(ByteSpan frame) {
  auto decoded = DecodeTypedFrame(frame);
  if (!decoded.ok()) {
    return decoded.error();
  }
  return std::move(decoded).value().payload;
}

namespace {

inline constexpr size_t kNoMagic = static_cast<size_t>(-1);

// Little-endian u32 at `p`; caller guarantees 4 readable bytes.
uint32_t ReadLeU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

// Index of the first complete 4-byte magic at/after `from`, or kNoMagic if
// none fits in the remaining bytes.
size_t FindMagic(ByteSpan stream, size_t from) {
  while (from + sizeof(kFrameMagic) <= stream.size()) {
    if (ReadLeU32(stream.data() + from) == kFrameMagic) {
      return from;
    }
    ++from;
  }
  return kNoMagic;
}

// Classification of the frame whose magic starts at `pos` — the one resync
// state machine shared by the complete-buffer reader and the streaming
// decoder, so their byte accounting can never drift apart.
enum class FrameProbe {
  kComplete,    // full frame present; *wire_size set (CRC still unchecked)
  kCorrupt,     // header untrustworthy (bad version/type or oversized length)
  kIncomplete,  // plausible header needs more bytes than `stream` holds
};

FrameProbe ProbeFrameAt(ByteSpan stream, size_t pos, size_t* wire_size) {
  FrameHeader header;
  if (!ParseFrameHeader(stream.subspan(pos), &header)) {
    return FrameProbe::kIncomplete;
  }
  if (!PlausibleFrameHeader(header)) {
    return FrameProbe::kCorrupt;
  }
  *wire_size = FrameWireSize(header.length);
  if (pos + *wire_size > stream.size()) {
    return FrameProbe::kIncomplete;
  }
  return FrameProbe::kComplete;
}

}  // namespace

std::optional<Frame> FrameReader::NextFrame() {
  while (pos_ < stream_.size()) {
    // Scan to the next magic; anything in between is garbage.
    size_t magic_at = FindMagic(stream_, pos_);
    if (magic_at == kNoMagic) {
      stats_.bytes_skipped += stream_.size() - pos_;
      saw_corruption_ = saw_corruption_ || pos_ < stream_.size();
      pos_ = stream_.size();
      return std::nullopt;
    }
    if (magic_at != pos_) {
      stats_.bytes_skipped += magic_at - pos_;
      saw_corruption_ = true;
      pos_ = magic_at;
    }

    size_t wire_size = 0;
    if (ProbeFrameAt(stream_, pos_, &wire_size) == FrameProbe::kComplete) {
      auto decoded = DecodeTypedFrame(stream_.subspan(pos_, wire_size));
      if (decoded.ok()) {
        pos_ += wire_size;
        stats_.frames_ok++;
        stats_.CountType(decoded.value().type);
        if (!saw_corruption_) {
          clean_prefix_end_ = pos_;
        }
        return std::move(decoded).value();
      }
    }
    // Corrupt frame at a magic boundary — an untrustworthy header, a frame
    // the buffer's end can never complete, or a CRC mismatch: count it,
    // step past the full 4-byte magic, and resynchronize on the next one.
    // Skipping all four bytes is safe — the magic's bytes are pairwise
    // distinct, so another magic cannot start inside this one — and those
    // bytes are garbage, so they land in bytes_skipped: every input byte
    // stays accounted to a good frame, a corrupt frame's magic, or skipped
    // garbage.
    stats_.frames_corrupt++;
    stats_.bytes_skipped += sizeof(kFrameMagic);
    saw_corruption_ = true;
    pos_ += sizeof(kFrameMagic);
  }
  return std::nullopt;
}

std::optional<Bytes> FrameReader::Next() {
  auto frame = NextFrame();
  if (!frame.has_value()) {
    return std::nullopt;
  }
  return std::move(frame->payload);
}

size_t StreamingFrameDecoder::Feed(ByteSpan chunk, std::vector<Frame>& out) {
  buffer_.insert(buffer_.end(), chunk.begin(), chunk.end());
  size_t produced = 0;
  size_t pos = 0;
  while (pos < buffer_.size()) {
    // Scan to the next magic.  Bytes that provably cannot start a magic are
    // garbage now; up to 3 trailing bytes might be a magic's prefix split
    // across chunks, so they stay buffered.
    size_t magic_at = FindMagic(buffer_, pos);
    if (magic_at == kNoMagic) {
      size_t keep = buffer_.size() >= sizeof(kFrameMagic) - 1
                        ? std::max(pos, buffer_.size() - (sizeof(kFrameMagic) - 1))
                        : pos;
      stats_.bytes_skipped += keep - pos;
      pos = keep;
      break;
    }
    stats_.bytes_skipped += magic_at - pos;
    pos = magic_at;

    size_t wire_size = 0;
    FrameProbe probe = ProbeFrameAt(buffer_, pos, &wire_size);
    if (probe == FrameProbe::kIncomplete) {
      break;  // unlike FrameReader, more bytes may still arrive: wait
    }
    if (probe == FrameProbe::kComplete) {
      auto decoded = DecodeTypedFrame(ByteSpan(buffer_.data() + pos, wire_size));
      if (decoded.ok()) {
        stats_.frames_ok++;
        stats_.CountType(decoded.value().type);
        out.push_back(std::move(decoded).value());
        produced++;
        pos += wire_size;
        continue;
      }
    }
    // kCorrupt or CRC mismatch: identical accounting to FrameReader.
    stats_.frames_corrupt++;
    stats_.bytes_skipped += sizeof(kFrameMagic);
    pos += sizeof(kFrameMagic);
  }
  buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<ptrdiff_t>(pos));
  return produced;
}

size_t StreamingFrameDecoder::Feed(ByteSpan chunk, std::vector<Bytes>& out) {
  std::vector<Frame> frames;
  size_t produced = Feed(chunk, frames);
  for (auto& frame : frames) {
    out.push_back(std::move(frame.payload));
  }
  return produced;
}

void StreamingFrameDecoder::Finish(std::vector<Frame>* out) {
  // Input is over, so no buffered frame can be completed by future bytes.
  // Run the complete-buffer reader over the remainder: a frame Feed was
  // still waiting on is now a torn tail, and FrameReader's resync can even
  // recover a valid frame embedded in its claimed payload.  Folding the
  // reader's books keeps the balance invariant — and the exact stats —
  // identical to FrameReader over the same total byte sequence.
  FrameReader reader(buffer_);
  while (auto frame = reader.NextFrame()) {
    if (out != nullptr) {
      out->push_back(std::move(*frame));
    }
  }
  stats_.Fold(reader.stats());
  buffer_.clear();
}

void StreamingFrameDecoder::Finish() { Finish(static_cast<std::vector<Frame>*>(nullptr)); }

void StreamingFrameDecoder::Finish(std::vector<Bytes>* out) {
  if (out == nullptr) {
    Finish();
    return;
  }
  std::vector<Frame> frames;
  Finish(&frames);
  for (auto& frame : frames) {
    out->push_back(std::move(frame.payload));
  }
}

}  // namespace prochlo

#include "src/service/wire.h"

#include <array>
#include <cassert>

#include "src/util/serialization.h"

namespace prochlo {

namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

uint32_t Crc32Update(uint32_t crc, ByteSpan data) {
  static const std::array<uint32_t, 256> table = BuildCrcTable();
  for (uint8_t byte : data) {
    crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8);
  }
  return crc;
}

// CRC over version || length || payload, the frame's integrity span.
uint32_t FrameCrc(uint8_t version, uint32_t length, ByteSpan payload) {
  std::array<uint8_t, 5> head = {
      version,
      static_cast<uint8_t>(length),
      static_cast<uint8_t>(length >> 8),
      static_cast<uint8_t>(length >> 16),
      static_cast<uint8_t>(length >> 24),
  };
  uint32_t crc = Crc32Update(0xFFFFFFFFu, ByteSpan(head.data(), head.size()));
  return Crc32Update(crc, payload) ^ 0xFFFFFFFFu;
}

}  // namespace

uint32_t Crc32(ByteSpan data) {
  return Crc32Update(0xFFFFFFFFu, data) ^ 0xFFFFFFFFu;
}

void AppendFrame(Bytes& out, ByteSpan payload) {
  // Producing a frame the decoder is specified to reject is a caller bug.
  assert(payload.size() <= kMaxFramePayload);
  Writer w;
  w.PutU32(kFrameMagic);
  w.PutU8(kWireVersion);
  w.PutU32(static_cast<uint32_t>(payload.size()));
  w.PutU32(FrameCrc(kWireVersion, static_cast<uint32_t>(payload.size()), payload));
  w.PutBytes(payload);
  Bytes frame = w.Take();
  out.insert(out.end(), frame.begin(), frame.end());
}

Bytes EncodeFrame(ByteSpan payload) {
  Bytes out;
  out.reserve(FrameWireSize(payload.size()));
  AppendFrame(out, payload);
  return out;
}

Result<Bytes> DecodeFrame(ByteSpan frame) {
  Reader reader(frame);
  uint32_t magic = 0;
  uint8_t version = 0;
  uint32_t length = 0;
  uint32_t crc = 0;
  if (!reader.GetU32(&magic) || !reader.GetU8(&version) || !reader.GetU32(&length) ||
      !reader.GetU32(&crc)) {
    return Error{"frame header truncated"};
  }
  if (magic != kFrameMagic) {
    return Error{"bad frame magic"};
  }
  if (version != kWireVersion) {
    return Error{"unsupported frame version"};
  }
  if (length > kMaxFramePayload) {
    return Error{"frame length exceeds limit"};
  }
  if (reader.remaining() < length) {
    return Error{"frame payload truncated"};
  }
  Bytes payload;
  reader.GetBytes(length, &payload);
  if (FrameCrc(version, length, payload) != crc) {
    return Error{"frame CRC mismatch"};
  }
  return payload;
}

std::optional<Bytes> FrameReader::Next() {
  while (pos_ < stream_.size()) {
    // Scan to the next magic; anything in between is garbage.
    size_t scan = pos_;
    while (scan + 4 <= stream_.size()) {
      uint32_t magic = static_cast<uint32_t>(stream_[scan]) |
                       static_cast<uint32_t>(stream_[scan + 1]) << 8 |
                       static_cast<uint32_t>(stream_[scan + 2]) << 16 |
                       static_cast<uint32_t>(stream_[scan + 3]) << 24;
      if (magic == kFrameMagic) {
        break;
      }
      ++scan;
    }
    if (scan + 4 > stream_.size()) {
      // No further magic; the tail is garbage.
      stats_.bytes_skipped += stream_.size() - pos_;
      saw_corruption_ = saw_corruption_ || pos_ < stream_.size();
      pos_ = stream_.size();
      return std::nullopt;
    }
    if (scan != pos_) {
      stats_.bytes_skipped += scan - pos_;
      saw_corruption_ = true;
      pos_ = scan;
    }

    auto decoded = DecodeFrame(stream_.subspan(pos_));
    if (decoded.ok()) {
      // Frame length is trustworthy once the CRC checks out.
      pos_ += FrameWireSize(decoded.value().size());
      stats_.frames_ok++;
      if (!saw_corruption_) {
        clean_prefix_end_ = pos_;
      }
      return std::move(decoded).value();
    }
    // Corrupt frame at a magic boundary: count it, step past the full
    // 4-byte magic, and resynchronize on the next one.  Skipping all four
    // bytes is safe — the magic's bytes are pairwise distinct, so another
    // magic cannot start inside this one — and those bytes are garbage, so
    // they land in bytes_skipped: every input byte stays accounted to a
    // good frame, a corrupt frame's magic, or skipped garbage.
    stats_.frames_corrupt++;
    stats_.bytes_skipped += sizeof(kFrameMagic);
    saw_corruption_ = true;
    pos_ += sizeof(kFrameMagic);
  }
  return std::nullopt;
}

}  // namespace prochlo

#include "src/service/frontend.h"

#include <thread>

#include "src/crypto/sha256.h"
#include "src/service/connection.h"
#include "src/util/serialization.h"

namespace prochlo {

namespace {

// RecordStream over an in-memory EpochBatch's per-shard reports, shard order
// then arrival order — the same order the spooled path streams.  It borrows
// the batch and yields copies, so a failed pipeline run leaves the batch
// intact for requeueing: the batch is the only copy of the epoch's reports
// in in-memory mode, and consuming it before the run succeeds is exactly the
// data-loss bug this stream exists to prevent.
class EpochBatchRecordStream : public RecordStream {
 public:
  explicit EpochBatchRecordStream(const EpochBatch& batch) : batch_(&batch) {
    total_ = 0;
    for (const auto& shard : batch_->shard_reports) {
      total_ += shard.size();
    }
  }

  size_t size() const override { return total_; }

  std::optional<Bytes> Next() override {
    while (shard_ < batch_->shard_reports.size()) {
      const auto& reports = batch_->shard_reports[shard_];
      if (index_ < reports.size()) {
        return reports[index_++];
      }
      shard_++;
      index_ = 0;
    }
    return std::nullopt;
  }

  void Reset() override {
    shard_ = 0;
    index_ = 0;
  }

 private:
  const EpochBatch* batch_;
  size_t total_ = 0;
  size_t shard_ = 0;
  size_t index_ = 0;
};

}  // namespace

ShufflerFrontend::ShufflerFrontend(FrontendConfig config)
    : config_(std::move(config)), pipeline_(config_.pipeline) {
  if (!config_.spool_dir.empty()) {
    SpoolConfig spool_config;
    spool_config.root = config_.spool_dir;
    spool_config.fsync_on_seal = config_.fsync_spool;
    spool_config.fs = config_.fs;
    spool_ = std::make_unique<Spool>(spool_config);
  }
  ingest_ = std::make_unique<ShardedIngest>(config_.ingest, spool_.get());
}

Status ShufflerFrontend::Start() {
  if (started_) {
    return Status::Ok();
  }
  std::vector<SessionOp> wal_session_ops;
  if (spool_ != nullptr) {
    if (config_.use_wal) {
      // WAL recovery phase 1 runs BEFORE the spool opens: it rolls unsealed
      // segments back to their checkpointed sizes and replays the
      // un-checkpointed generations' report records into the segment files,
      // so the spool's own recovery below counts them like any other
      // durable frame.
      IngestWalConfig wal_config;
      wal_config.dir = config_.spool_dir;
      wal_config.fsync = config_.fsync_spool;
      wal_config.checkpoint_threshold_bytes = config_.wal_checkpoint_threshold_bytes;
      wal_config.fs = config_.fs;
      wal_ = std::make_unique<IngestWal>(wal_config);
      auto wal_recovery = wal_->RecoverBeforeSpoolOpen();
      if (!wal_recovery.ok()) {
        return wal_recovery.error();
      }
      wal_session_ops = std::move(wal_recovery.value().session_ops);
      stats_.recovered_wal_reports += wal_recovery.value().replayed_reports;
      stats_.recovered_wal_session_ops += wal_session_ops.size();
      stats_.recovered_truncated_bytes += wal_recovery.value().truncated_bytes;
    }
    auto recovery = spool_->Open();
    if (!recovery.ok()) {
      return recovery.error();
    }
    for (const auto& segment : recovery.value().segments) {
      stats_.recovered_reports += segment.frames;
    }
    stats_.recovered_truncated_bytes += recovery.value().truncated_bytes;
    ingest_->RestoreFromRecovery(recovery.value());

    // The session journal lives inside the spool directory (just created
    // above) and shares the spool's durability knobs: the same fsync policy
    // and the same injectable filesystem.
    SessionJournalConfig journal_config;
    journal_config.path = config_.spool_dir + "/sessions.journal";
    journal_config.fsync_commits = config_.fsync_spool;
    journal_config.fs = config_.fs;
    journal_ = std::make_unique<SessionJournal>(journal_config);
    auto replayed = journal_->Open();
    if (!replayed.ok()) {
      return replayed.error();
    }
    journal_recovery_ = std::move(replayed).value();

    if (wal_ != nullptr) {
      // Re-journal the replayed session ops so the journal alone once again
      // reconstructs session state, then merge them into the recovery image
      // the AckRegistry will be seeded from.  Only after they are durable
      // may FinishRecovery delete the generations that carried them.
      uint64_t last_lsn = 0;
      for (const SessionOp& op : wal_session_ops) {
        Result<uint64_t> lsn = Error{"unreached"};
        switch (op.kind) {
          case SessionOp::kCommit:
            lsn = journal_->AppendCommit(op.session_id, 0, op.value);
            break;
          case SessionOp::kEvict:
            lsn = journal_->AppendEvict(op.session_id, op.value);
            break;
          case SessionOp::kGoodbye:
            lsn = journal_->AppendGoodbye(op.session_id);
            break;
        }
        if (!lsn.ok()) {
          return lsn.error();
        }
        last_lsn = lsn.value();
      }
      if (last_lsn != 0) {
        Status synced = journal_->SyncUpTo(last_lsn);
        if (!synced.ok()) {
          return synced;
        }
      }
      journal_recovery_ = ApplySessionOps(std::move(journal_recovery_), wal_session_ops);
      Status finished = wal_->FinishRecovery();
      if (!finished.ok()) {
        return finished;
      }
      wal_->AttachTargets(spool_.get(), journal_.get());
      wal_->set_rollback_callback([this](size_t shard, uint64_t epoch) {
        ingest_->RollbackAccepted(shard, epoch);
        stats_.reports_accepted--;
      });
      ingest_->SetWal(wal_.get());
    }
    stats_.recovered_sessions += journal_recovery_.live.size();
    stats_.recovered_session_records += journal_recovery_.records;
  }
  started_ = true;
  return Status::Ok();
}

Status ShufflerFrontend::BindAckRegistry(AckRegistry* registry) {
  if (!started_) {
    return Error{"frontend: Start() must succeed before BindAckRegistry"};
  }
  registry->set_max_sessions(config_.max_sessions);
  if (journal_ != nullptr) {
    // Restore before attach: replayed records must not be re-journaled.
    registry->RestoreFromRecovery(journal_recovery_);
    registry->AttachJournal(journal_.get());
    if (wal_ != nullptr) {
      // Commits now ride the unified WAL record (the journal copy is
      // written by checkpoints), and journal compaction piggybacks on the
      // checkpoint cadence instead of the per-commit append path.
      registry->AttachWal(wal_.get());
      AckRegistry* bound = registry;
      wal_->set_post_checkpoint_hook([bound] { bound->CompactJournalIfNeeded(); });
    }
  }
  return Status::Ok();
}

Status ShufflerFrontend::AcceptFrameStream(ByteSpan stream) {
  FrameReader reader(stream);
  Status status = Status::Ok();
  while (auto payload = reader.Next()) {
    status = AcceptReport(std::move(*payload));
    if (!status.ok()) {
      break;  // fold the reader's stats in before surfacing the error
    }
  }
  // Folded on every path: an early AcceptReport failure must not drop the
  // frames/bytes the reader has already accounted, or the stats-balance
  // invariant ("every input byte is a good frame, a corrupt frame, or
  // skipped garbage") breaks exactly when operators need it most.
  stats_.frames_ok += reader.stats().frames_ok;
  stats_.frames_corrupt += reader.stats().frames_corrupt;
  stats_.bytes_skipped += reader.stats().bytes_skipped;
  return status;
}

Status ShufflerFrontend::AcceptReport(Bytes sealed_report) {
  Status status = ingest_->Accept(std::move(sealed_report));
  if (status.ok()) {
    stats_.reports_accepted++;
  }
  return status;
}

Status ShufflerFrontend::AcceptRoutedReport(size_t shard_index, Bytes sealed_report) {
  Status status = ingest_->AcceptToShard(shard_index, std::move(sealed_report));
  if (status.ok()) {
    stats_.reports_accepted++;
  }
  return status;
}

Status ShufflerFrontend::AcceptRoutedReportAsync(
    size_t shard_index, Bytes sealed_report, ReportContext ctx,
    std::function<void(const Status&)> done) {
  Status status =
      ingest_->AcceptToShard(shard_index, std::move(sealed_report), ctx, &done);
  if (status.ok()) {
    stats_.reports_accepted++;
  }
  if (done) {
    // Not consumed by a WAL (non-WAL mode, or the append itself failed):
    // the accept was synchronous and `status` is the durability verdict.
    done(status);
  }
  return status;
}

Status ShufflerFrontend::BarrierIngest() {
  return wal_ != nullptr ? wal_->Sync() : Status::Ok();
}

Status ShufflerFrontend::Tick() {
  Status status = ingest_->Tick();
  if (wal_ != nullptr) {
    // Backlog-threshold checkpoint rides the scheduling cadence, so a busy
    // epoch cannot grow the replay suffix without bound between seals.
    Status checkpointed = wal_->MaybeCheckpoint();
    if (status.ok() && !checkpointed.ok()) {
      status = checkpointed;
    }
  }
  return status;
}

Status ShufflerFrontend::CutEpoch(bool seal_if_empty) {
  return ingest_->CutEpoch(seal_if_empty);
}

Status ShufflerFrontend::SyncSpool() {
  if (wal_ != nullptr) {
    // Buffered reports live in the WAL until a checkpoint; the barrier makes
    // them durable before the segment fsync below.
    Status synced = wal_->Sync();
    if (!synced.ok()) {
      return synced;
    }
  }
  return spool_ != nullptr ? spool_->SyncAll() : Status::Ok();
}

SecureRandom DeriveEpochRng(const std::string& seed, uint64_t epoch) {
  Writer w;
  w.PutString(seed);
  w.PutU64(epoch);
  Sha256Digest digest = Sha256::TaggedHash("prochlo-epoch-rng", w.data());
  return SecureRandom(ByteSpan(digest.data(), digest.size()));
}

Rng DeriveEpochNoiseRng(const std::string& seed, uint64_t epoch) {
  Writer w;
  w.PutString(seed);
  w.PutU64(epoch);
  Sha256Digest digest = Sha256::TaggedHash("prochlo-epoch-noise", w.data());
  uint64_t rng_seed = 0;
  for (int i = 0; i < 8; ++i) {
    rng_seed |= static_cast<uint64_t>(digest[i]) << (8 * i);
  }
  return Rng(rng_seed);
}

SecureRandom ShufflerFrontend::EpochRng(uint64_t epoch) const {
  return DeriveEpochRng(config_.pipeline.seed, epoch);
}

Rng ShufflerFrontend::EpochNoiseRng(uint64_t epoch) const {
  return DeriveEpochNoiseRng(config_.pipeline.seed, epoch);
}

DrainReport ShufflerFrontend::DrainSealedEpochs() {
  DrainReport report;
  while (auto batch = ingest_->PopSealedEpoch()) {
    EpochResult epoch_result;
    epoch_result.epoch = batch->epoch;
    epoch_result.reports = batch->total;

    SecureRandom epoch_rng = EpochRng(batch->epoch);
    Rng epoch_noise = EpochNoiseRng(batch->epoch);

    Result<PipelineResult> run = Error{"epoch not drained"};
    if (spool_ != nullptr) {
      // Stream straight off the epoch's segment files.
      auto stream = spool_->OpenEpochStream(batch->epoch);
      run = pipeline_.RunReports(*stream, epoch_rng, epoch_noise);
    } else {
      // Borrow the batch — never consume it before the run succeeds: the
      // batch is the only copy of an in-memory epoch, and a requeue after
      // moving the reports out would retry an empty shell.
      EpochBatchRecordStream stream(*batch);
      run = pipeline_.RunReports(stream, epoch_rng, epoch_noise);
    }
    if (run.ok() && config_.inject_drain_failure.has_value() &&
        config_.inject_drain_failure->epoch == batch->epoch &&
        injected_drain_failures_ < config_.inject_drain_failure->times) {
      injected_drain_failures_++;
      run = Error{"injected drain failure (epoch " + std::to_string(batch->epoch) + ")"};
    }
    if (!run.ok()) {
      // Put the intact batch back at the head of the queue (in-memory mode
      // holds the only copy of its reports), so a later DrainSealedEpochs
      // retries it; spooled segments also stay on disk untouched.  The
      // epochs already drained this call ride along in the report rather
      // than being discarded with the error.
      report.failure = DrainError{batch->epoch, run.error()};
      ingest_->RequeueSealedEpoch(std::move(*batch));
      return report;
    }
    epoch_result.result = std::move(run).value();
    if (spool_ != nullptr && config_.remove_drained_epochs) {
      // Transient unlink failures (a scanner pinning the directory, EMFILE
      // pressure) usually clear quickly, and a leaked epoch replays as a
      // duplicate after restart — worth a couple of bounded retries before
      // conceding.  The spool keeps failed segments tracked, so each retry
      // re-attempts exactly the files still on disk.
      Status removed = spool_->RemoveEpoch(batch->epoch);
      for (uint32_t attempt = 1; !removed.ok() && attempt < config_.remove_retry_attempts;
           ++attempt) {
        stats_.remove_retries++;
        std::this_thread::sleep_for(config_.remove_retry_delay);
        removed = spool_->RemoveEpoch(batch->epoch);
      }
      if (!removed.ok()) {
        // The epoch's reports are safe (already drained into the result);
        // what leaked is disk space plus a restart replaying the epoch as a
        // duplicate.  Count it so operators see the leak.
        stats_.remove_failures++;
      }
    }
    stats_.epochs_drained++;
    report.results.push_back(std::move(epoch_result));
  }
  return report;
}

Result<std::optional<EpochPartialResult>> ShufflerFrontend::DrainNextEpochPartial() {
  auto batch = ingest_->PopSealedEpoch();
  if (!batch.has_value()) {
    return std::optional<EpochPartialResult>(std::nullopt);
  }
  EpochPartialResult out;
  out.epoch = batch->epoch;
  out.reports = batch->total;

  if (batch->total > 0) {
    Result<EpochPartial> run = Error{"epoch not drained"};
    if (spool_ != nullptr) {
      auto stream = spool_->OpenEpochStream(batch->epoch);
      run = pipeline_.RunReportsPartial(*stream);
    } else {
      // Borrow the batch (see DrainSealedEpochs): a failed run requeues it
      // intact, and in-memory mode holds the only copy of its reports.
      EpochBatchRecordStream stream(*batch);
      run = pipeline_.RunReportsPartial(stream);
    }
    if (run.ok() && config_.inject_drain_failure.has_value() &&
        config_.inject_drain_failure->epoch == batch->epoch &&
        injected_drain_failures_ < config_.inject_drain_failure->times) {
      injected_drain_failures_++;
      run = Error{"injected drain failure (epoch " + std::to_string(batch->epoch) + ")"};
    }
    if (!run.ok()) {
      Error error = run.error();
      ingest_->RequeueSealedEpoch(std::move(*batch));
      return error;
    }
    out.partial = std::move(run).value();
  }

  if (spool_ != nullptr && config_.remove_drained_epochs) {
    // Same bounded-retry cleanup as the serial drain (an empty alignment
    // epoch still leaves a marker + manifest to remove).
    Status removed = spool_->RemoveEpoch(batch->epoch);
    for (uint32_t attempt = 1; !removed.ok() && attempt < config_.remove_retry_attempts;
         ++attempt) {
      stats_.remove_retries++;
      std::this_thread::sleep_for(config_.remove_retry_delay);
      removed = spool_->RemoveEpoch(batch->epoch);
    }
    if (!removed.ok()) {
      stats_.remove_failures++;
    }
  }
  stats_.epochs_drained++;
  return std::optional<EpochPartialResult>(std::move(out));
}

}  // namespace prochlo

// Core differential-privacy mechanisms: Laplace and Gaussian noise, plus the
// normal-distribution helpers used by the thresholding analysis.
//
// The ESA analyzer applies these for differentially-private release (paper
// §3.4); the shuffler's randomized thresholding is analyzed via the Gaussian
// mechanism (threshold_dp.h).
#ifndef PROCHLO_SRC_DP_MECHANISMS_H_
#define PROCHLO_SRC_DP_MECHANISMS_H_

#include "src/util/rng.h"

namespace prochlo {

// Standard normal CDF Φ(x).
double NormalCdf(double x);

// Laplace(0, scale) sample.
double SampleLaplace(Rng& rng, double scale);

// The ε-DP Laplace mechanism for a statistic with L1 sensitivity
// `sensitivity`: value + Lap(sensitivity/epsilon).
double LaplaceMechanism(Rng& rng, double value, double sensitivity, double epsilon);

// The (ε,δ)-DP Gaussian mechanism with the *analytic* calibration of Balle &
// Wang: returns value + N(0, σ²) with σ = CalibrateGaussianSigma(...).
double GaussianMechanism(Rng& rng, double value, double sensitivity, double epsilon,
                         double delta);

// δ achieved by the Gaussian mechanism with noise σ at privacy ε, for unit
// sensitivity (analytic Gaussian mechanism):
//   δ(ε, σ) = Φ(1/(2σ) − εσ) − e^ε · Φ(−1/(2σ) − εσ).
double GaussianMechanismDelta(double sigma, double epsilon);

// Smallest σ (unit sensitivity) achieving (ε, δ), by bisection on the
// analytic expression above.
double CalibrateGaussianSigma(double epsilon, double delta);

// Smallest ε achieved by noise σ (unit sensitivity) at a given δ, by
// bisection — this is what turns the shuffler's σ into its privacy claim.
double GaussianMechanismEpsilon(double sigma, double delta);

}  // namespace prochlo

#endif  // PROCHLO_SRC_DP_MECHANISMS_H_

// Randomized response (Warner 1965; paper §3.5 "a textbook form of
// randomized response") for small known domains, with the unbiased
// frequency estimator used in analysis.
#ifndef PROCHLO_SRC_DP_RANDOMIZED_RESPONSE_H_
#define PROCHLO_SRC_DP_RANDOMIZED_RESPONSE_H_

#include <cstdint>
#include <vector>

#include "src/util/rng.h"

namespace prochlo {

// k-ary randomized response: report the true value with probability
// e^ε / (e^ε + k - 1), otherwise a uniformly random *other* value.  This is
// the optimal ε-LDP direct encoding for a domain of size k.
class RandomizedResponse {
 public:
  RandomizedResponse(uint64_t domain_size, double epsilon);

  uint64_t Randomize(uint64_t true_value, Rng& rng) const;

  // Probability a report equals the sender's true value.
  double truth_probability() const { return p_truth_; }

  // Unbiased per-value count estimates from the observed report histogram.
  // observed[v] = number of reports of value v; returns estimated true
  // counts (may be negative due to noise).
  std::vector<double> EstimateCounts(const std::vector<uint64_t>& observed) const;

  // Standard deviation of a single value's count estimate given n reports —
  // the "noise floor" that limits local-DP utility (paper §2.2).
  double EstimateStdDev(uint64_t n) const;

 private:
  uint64_t domain_size_;
  double p_truth_;
};

}  // namespace prochlo

#endif  // PROCHLO_SRC_DP_RANDOMIZED_RESPONSE_H_

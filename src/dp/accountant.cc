#include "src/dp/accountant.h"

#include <algorithm>
#include <cmath>

namespace prochlo {

void PrivacyAccountant::Spend(const std::string& stage, double epsilon, double delta) {
  entries_.push_back(Entry{stage, epsilon, delta});
}

double PrivacyAccountant::TotalEpsilonBasic() const {
  double total = 0;
  for (const auto& e : entries_) {
    total += e.epsilon;
  }
  return total;
}

double PrivacyAccountant::TotalDelta() const {
  double total = 0;
  for (const auto& e : entries_) {
    total += e.delta;
  }
  return total;
}

double PrivacyAccountant::TotalEpsilonAdvanced(double delta_slack) const {
  if (entries_.empty()) {
    return 0;
  }
  double k = static_cast<double>(entries_.size());
  double worst = 0;
  for (const auto& e : entries_) {
    worst = std::max(worst, e.epsilon);
  }
  return std::sqrt(2.0 * k * std::log(1.0 / delta_slack)) * worst +
         k * worst * (std::exp(worst) - 1.0);
}

}  // namespace prochlo

#include "src/dp/release.h"

#include "src/dp/mechanisms.h"

namespace prochlo {

std::map<std::string, double> ReleaseHistogram(const std::map<std::string, uint64_t>& histogram,
                                               const ReleaseOptions& options, Rng& rng) {
  std::map<std::string, double> released;
  for (const auto& [value, count] : histogram) {
    double noisy = LaplaceMechanism(rng, static_cast<double>(count), options.sensitivity,
                                    options.epsilon);
    if (noisy >= options.min_released_count) {
      released[value] = noisy;
    }
  }
  return released;
}

}  // namespace prochlo

// Privacy accounting for the shuffler's randomized thresholding (paper §3.5
// and §5).
//
// The shuffler (a) drops d ~ ⌊N(D, σ²)⌉ (truncated at 0) items from every
// crowd bucket and (b) forwards a crowd only if its remaining count clears
// the threshold T.  One client changes a crowd count by at most 1, so the
// mechanism behaves like a Gaussian mechanism on the count vector: its
// (ε, δ) follows from the analytic Gaussian mechanism.
//
// The paper's settings reproduce exactly:
//   T=20, D=10, σ=2  →  (2.25, 10⁻⁶)-DP   (§5, all four case studies)
//   T=100, σ=4       →  (1.2, 10⁻⁷)-DP    (§5.3 Perms)
#ifndef PROCHLO_SRC_DP_THRESHOLD_DP_H_
#define PROCHLO_SRC_DP_THRESHOLD_DP_H_

namespace prochlo {

struct ThresholdPolicy {
  // Minimum surviving count for a crowd to be forwarded.
  double threshold = 20;
  // Mean and stddev of the rounded-normal per-crowd drop.
  double drop_mean = 10;
  double drop_sigma = 2;
};

struct ThresholdPrivacy {
  double epsilon;
  double delta;
};

// ε for the policy's σ at the target δ (analytic Gaussian mechanism; the
// truncation at 0 only weakens the adversary's view for counts near zero,
// which the threshold already suppresses).
ThresholdPrivacy AnalyzeThresholdPolicy(const ThresholdPolicy& policy, double target_delta);

}  // namespace prochlo

#endif  // PROCHLO_SRC_DP_THRESHOLD_DP_H_

// Privacy-loss accounting across the stages of an ESA pipeline (paper §3.5:
// "achieve the desired end-to-end privacy guarantees by composing together
// the properties of the individual stages").
#ifndef PROCHLO_SRC_DP_ACCOUNTANT_H_
#define PROCHLO_SRC_DP_ACCOUNTANT_H_

#include <string>
#include <vector>

namespace prochlo {

class PrivacyAccountant {
 public:
  // Records one (ε, δ)-DP mechanism application; `stage` is a label for
  // reporting (e.g. "encoder", "shuffler-threshold", "analyzer-release").
  void Spend(const std::string& stage, double epsilon, double delta);

  // Basic (sequential) composition: sums of ε and δ.
  double TotalEpsilonBasic() const;
  double TotalDelta() const;

  // Advanced composition (Dwork-Rothblum-Vadhan) for k uses of the *worst*
  // recorded ε, spending an extra delta_slack:
  //   ε' = sqrt(2k ln(1/δ_slack))·ε + k·ε·(e^ε − 1).
  double TotalEpsilonAdvanced(double delta_slack) const;

  struct Entry {
    std::string stage;
    double epsilon;
    double delta;
  };
  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::vector<Entry> entries_;
};

}  // namespace prochlo

#endif  // PROCHLO_SRC_DP_ACCOUNTANT_H_

#include "src/dp/rappor.h"

#include <cmath>

#include "src/crypto/sha256.h"
#include "src/util/bytes.h"

namespace prochlo {

double RapporParams::Epsilon() const {
  return 2.0 * num_hashes * std::log((1.0 - f / 2.0) / (f / 2.0));
}

double RapporParams::EpsilonOneReport() const {
  if (!use_irr) {
    return Epsilon();
  }
  // Effective per-report flip rates after PRR + IRR (RAPPOR paper, eq. for
  // q* and p*), bounding one report's leakage over h bits.
  double q_star = 0.5 * f * (irr_p + irr_q) + (1.0 - f) * irr_q;
  double p_star = 0.5 * f * (irr_p + irr_q) + (1.0 - f) * irr_p;
  return num_hashes * std::log((q_star * (1.0 - p_star)) / (p_star * (1.0 - q_star)));
}

double RapporParams::SignalAttenuation() const {
  double base = 1.0 - f;
  return use_irr ? (irr_q - irr_p) * base : base;
}

double RapporParams::ReportRate(bool true_bit) const {
  double prr_one = true_bit ? 1.0 - f / 2.0 : f / 2.0;
  if (!use_irr) {
    return prr_one;
  }
  return irr_q * prr_one + irr_p * (1.0 - prr_one);
}

RapporParams RapporParams::ForEpsilon(double epsilon, uint32_t num_bloom_bits,
                                      uint32_t num_hashes, uint32_t num_cohorts) {
  RapporParams params;
  params.num_bloom_bits = num_bloom_bits;
  params.num_hashes = num_hashes;
  params.num_cohorts = num_cohorts;
  params.f = 2.0 / (1.0 + std::exp(epsilon / (2.0 * num_hashes)));
  return params;
}

std::vector<uint32_t> RapporEncoder::BloomBits(const std::string& value, uint32_t cohort) const {
  std::vector<uint32_t> positions;
  positions.reserve(params_.num_hashes);
  for (uint32_t i = 0; i < params_.num_hashes; ++i) {
    std::string input = std::to_string(cohort) + ":" + std::to_string(i) + ":" + value;
    Sha256Digest digest = Sha256::TaggedHash("rappor-bloom", ToBytes(input));
    uint32_t word = static_cast<uint32_t>(digest[0]) | (static_cast<uint32_t>(digest[1]) << 8) |
                    (static_cast<uint32_t>(digest[2]) << 16) |
                    (static_cast<uint32_t>(digest[3]) << 24);
    positions.push_back(word % params_.num_bloom_bits);
  }
  return positions;
}

RapporReport RapporEncoder::Encode(const std::string& value, uint64_t client_id,
                                   Rng& rng) const {
  RapporReport report;
  report.cohort = static_cast<uint32_t>(client_id % params_.num_cohorts);
  report.bits.assign(params_.num_bloom_bits, 0);
  for (uint32_t pos : BloomBits(value, report.cohort)) {
    report.bits[pos] = 1;
  }
  // Permanent randomized response: keep with 1-f, coin-flip with f.
  for (auto& bit : report.bits) {
    if (rng.NextBool(params_.f)) {
      bit = rng.NextBool(0.5) ? 1 : 0;
    }
  }
  // Instantaneous randomized response: re-randomize per report so that
  // longitudinal observers only ever see IRR noise around the memoized PRR.
  if (params_.use_irr) {
    for (auto& bit : report.bits) {
      bit = rng.NextBool(bit != 0 ? params_.irr_q : params_.irr_p) ? 1 : 0;
    }
  }
  return report;
}

RapporDecoder::RapporDecoder(const RapporParams& params)
    : params_(params),
      encoder_(params),
      bit_counts_(params.num_cohorts, std::vector<uint64_t>(params.num_bloom_bits, 0)),
      cohort_reports_(params.num_cohorts, 0) {}

void RapporDecoder::Accumulate(const RapporReport& report) {
  cohort_reports_[report.cohort]++;
  total_reports_++;
  auto& counts = bit_counts_[report.cohort];
  for (uint32_t i = 0; i < params_.num_bloom_bits; ++i) {
    counts[i] += report.bits[i];
  }
}

std::vector<RapporDetection> RapporDecoder::DecodeCandidates(
    const std::vector<std::string>& candidates, double z_threshold) const {
  // De-biased per-bit truth estimate: t = (c - baseline) / attenuation,
  // with the null-rate variance scaled the same way.  The baseline is the
  // cohort's *ambient* mean bit count rather than the pure-noise level
  // (f/2)N: long-tail values splatter the Bloom filter roughly uniformly,
  // and subtracting the ambient level is the detection analogue of the
  // production decoder's regression against that background.
  const double debias_denominator = params_.SignalAttenuation();

  std::vector<double> cohort_baseline(params_.num_cohorts, 0.0);
  std::vector<double> cohort_bit_variance(params_.num_cohorts, 0.0);
  for (uint32_t cohort = 0; cohort < params_.num_cohorts; ++cohort) {
    double total = 0;
    for (uint32_t i = 0; i < params_.num_bloom_bits; ++i) {
      total += static_cast<double>(bit_counts_[cohort][i]);
    }
    double mean = total / static_cast<double>(params_.num_bloom_bits);
    cohort_baseline[cohort] = mean;
    // Empirical variance of the bit loads: under heavy Bloom collisions the
    // *background heterogeneity* across bits (many moderately-frequent
    // values splattering the filter) dominates the PRR sampling noise, and
    // a PRR-only null fires everywhere.  Calibrating the null against the
    // observed bit-load spread is the detection analogue of the production
    // decoder regressing candidates against the full bit profile.
    double sq = 0;
    for (uint32_t i = 0; i < params_.num_bloom_bits; ++i) {
      double d = static_cast<double>(bit_counts_[cohort][i]) - mean;
      sq += d * d;
    }
    cohort_bit_variance[cohort] = sq / static_cast<double>(params_.num_bloom_bits);
  }

  std::vector<RapporDetection> detections;
  for (const auto& candidate : candidates) {
    double estimate = 0;
    double variance = 0;
    for (uint32_t cohort = 0; cohort < params_.num_cohorts; ++cohort) {
      double n = static_cast<double>(cohort_reports_[cohort]);
      if (n == 0) {
        continue;
      }
      auto positions = encoder_.BloomBits(candidate, cohort);
      double bit_sum = 0;
      for (uint32_t pos : positions) {
        double c = static_cast<double>(bit_counts_[cohort][pos]);
        bit_sum += (c - cohort_baseline[cohort]) / debias_denominator;
      }
      // Average the candidate's h bits within the cohort; the null variance
      // is the larger of the analytic PRR noise and the empirical bit-load
      // spread (see above).
      double h = static_cast<double>(positions.size());
      estimate += bit_sum / h;
      double null_rate = params_.ReportRate(false);
      double analytic = n * null_rate * (1.0 - null_rate);
      double empirical = cohort_bit_variance[cohort];  // raw-count domain
      variance += std::max(analytic, empirical) /
                  (debias_denominator * debias_denominator) / h;
    }
    double stddev = std::sqrt(variance);
    if (stddev == 0) {
      continue;
    }
    double z = estimate / stddev;
    if (z >= z_threshold) {
      detections.push_back(RapporDetection{candidate, estimate, z});
    }
  }
  return detections;
}

}  // namespace prochlo

// Differentially-private release of analysis output (paper §3.4): even when
// the materialized database already carries shuffler-stage guarantees, the
// analyzer can add Laplace noise before making results public, "at no real
// loss to utility".
#ifndef PROCHLO_SRC_DP_RELEASE_H_
#define PROCHLO_SRC_DP_RELEASE_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/util/rng.h"

namespace prochlo {

struct ReleaseOptions {
  double epsilon = 1.0;
  // L1 sensitivity of one individual's contribution to the histogram (1 if
  // each client contributes one report).
  double sensitivity = 1.0;
  // Suppress released counts below this value (post-noise); pairs naturally
  // with the noise to avoid publishing artifacts of single records.
  double min_released_count = 0.0;
};

// ε-DP histogram release: count + Laplace(sensitivity/ε) per entry.
std::map<std::string, double> ReleaseHistogram(const std::map<std::string, uint64_t>& histogram,
                                               const ReleaseOptions& options, Rng& rng);

}  // namespace prochlo

#endif  // PROCHLO_SRC_DP_RELEASE_H_

#include "src/dp/randomized_response.h"

#include <cmath>

namespace prochlo {

RandomizedResponse::RandomizedResponse(uint64_t domain_size, double epsilon)
    : domain_size_(domain_size) {
  double e = std::exp(epsilon);
  p_truth_ = e / (e + static_cast<double>(domain_size - 1));
}

uint64_t RandomizedResponse::Randomize(uint64_t true_value, Rng& rng) const {
  if (domain_size_ <= 1 || rng.NextBool(p_truth_)) {
    return true_value;
  }
  // Uniform over the other k-1 values.
  uint64_t other = rng.NextBelow(domain_size_ - 1);
  return other >= true_value ? other + 1 : other;
}

std::vector<double> RandomizedResponse::EstimateCounts(
    const std::vector<uint64_t>& observed) const {
  uint64_t n = 0;
  for (uint64_t c : observed) {
    n += c;
  }
  // Each report lands on value v with probability
  //   p_truth               if v is true,
  //   (1-p_truth)/(k-1)     otherwise.
  // Inverting: t_v = (c_v - n*q) / (p - q) with q = (1-p)/(k-1).
  double q = (1.0 - p_truth_) / static_cast<double>(domain_size_ - 1);
  std::vector<double> estimates(observed.size());
  for (size_t v = 0; v < observed.size(); ++v) {
    estimates[v] =
        (static_cast<double>(observed[v]) - static_cast<double>(n) * q) / (p_truth_ - q);
  }
  return estimates;
}

double RandomizedResponse::EstimateStdDev(uint64_t n) const {
  double q = (1.0 - p_truth_) / static_cast<double>(domain_size_ - 1);
  // Binomial noise from the n*q false-positive floor dominates for rare
  // values; the estimator divides by (p - q).
  return std::sqrt(static_cast<double>(n) * q * (1.0 - q)) / (p_truth_ - q);
}

}  // namespace prochlo

// RAPPOR: Randomized Aggregatable Privacy-Preserving Ordinal Response
// (Erlingsson, Pihur & Korolova, CCS 2014 [28]) — the locally-differentially-
// private baseline that PROCHLO's Figure 5 compares against.
//
// One-time collection variant: each client hashes its value into h bits of a
// k-bit Bloom filter (per-cohort hash functions), then applies the permanent
// randomized response — every bit is reported truthfully with probability
// 1-f, and replaced by a fair coin with probability f.  The resulting
// ε = 2h·ln((1-f/2)/(f/2)).
//
// The decoder aggregates per-cohort bit counts, de-biases them, and tests
// each candidate string for statistical significance — the square-root noise
// floor of this test is exactly the utility limitation the paper's §2.2
// describes.  (The production system fits a lasso regression; the
// significance test reproduces the same detection behaviour for Figure 5's
// purposes.)
#ifndef PROCHLO_SRC_DP_RAPPOR_H_
#define PROCHLO_SRC_DP_RAPPOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/rng.h"

namespace prochlo {

struct RapporParams {
  uint32_t num_bloom_bits = 128;  // k
  uint32_t num_hashes = 2;        // h
  uint32_t num_cohorts = 8;       // m
  double f = 0.0;                 // permanent randomized response noise
  // Instantaneous randomized response (IRR), the deployed system's second
  // noise level for longitudinal privacy: each *report* re-randomizes the
  // memoized PRR bits, so repeated observations of one client do not
  // average the PRR noise away.  Disabled (report = PRR) when q == 1, p == 0.
  bool use_irr = false;
  double irr_q = 0.75;  // P(report bit = 1 | PRR bit = 1)
  double irr_p = 0.50;  // P(report bit = 1 | PRR bit = 0)

  // The longitudinal (one-time / PRR-level) privacy bound.
  double Epsilon() const;
  // The per-report privacy bound contributed by the IRR alone.
  double EpsilonOneReport() const;
  // Attenuation of a true bit's signal in the reported counts:
  // (1 - f) without IRR, (q - p)(1 - f) with.
  double SignalAttenuation() const;
  // Reported-bit rate for a bit that is 0/1 after hashing (pre-PRR).
  double ReportRate(bool true_bit) const;
  // Sets f to achieve a target ε (f = 2 / (1 + e^(ε/2h))).
  static RapporParams ForEpsilon(double epsilon, uint32_t num_bloom_bits = 128,
                                 uint32_t num_hashes = 2, uint32_t num_cohorts = 8);
};

struct RapporReport {
  uint32_t cohort = 0;
  std::vector<uint8_t> bits;  // k entries of 0/1
};

class RapporEncoder {
 public:
  explicit RapporEncoder(const RapporParams& params) : params_(params) {}

  // Bloom-bit positions of `value` in `cohort` (h distinct-ish positions).
  std::vector<uint32_t> BloomBits(const std::string& value, uint32_t cohort) const;

  // Encodes one report; the cohort is derived from client_id.
  RapporReport Encode(const std::string& value, uint64_t client_id, Rng& rng) const;

 private:
  RapporParams params_;
};

struct RapporDetection {
  std::string candidate;
  double estimated_count = 0;
  double z_score = 0;
};

class RapporDecoder {
 public:
  explicit RapporDecoder(const RapporParams& params);

  void Accumulate(const RapporReport& report);
  uint64_t num_reports() const { return total_reports_; }

  // Tests every candidate; returns those whose de-biased count estimate
  // exceeds `z_threshold` standard deviations (callers typically Bonferroni-
  // scale the threshold by the candidate-list size).
  std::vector<RapporDetection> DecodeCandidates(const std::vector<std::string>& candidates,
                                                double z_threshold) const;

 private:
  RapporParams params_;
  RapporEncoder encoder_;
  std::vector<std::vector<uint64_t>> bit_counts_;  // [cohort][bit]
  std::vector<uint64_t> cohort_reports_;
  uint64_t total_reports_ = 0;
};

}  // namespace prochlo

#endif  // PROCHLO_SRC_DP_RAPPOR_H_

#include "src/dp/mechanisms.h"

#include <cmath>

namespace prochlo {

double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double SampleLaplace(Rng& rng, double scale) {
  // Inverse-CDF sampling from a uniform in (-1/2, 1/2).
  double u = rng.NextDouble() - 0.5;
  double magnitude = -scale * std::log(1.0 - 2.0 * std::abs(u));
  return u < 0 ? -magnitude : magnitude;
}

double LaplaceMechanism(Rng& rng, double value, double sensitivity, double epsilon) {
  return value + SampleLaplace(rng, sensitivity / epsilon);
}

double GaussianMechanismDelta(double sigma, double epsilon) {
  double a = 1.0 / (2.0 * sigma) - epsilon * sigma;
  double b = -1.0 / (2.0 * sigma) - epsilon * sigma;
  return NormalCdf(a) - std::exp(epsilon) * NormalCdf(b);
}

double CalibrateGaussianSigma(double epsilon, double delta) {
  double lo = 1e-6;
  double hi = 1e6;
  for (int i = 0; i < 200; ++i) {
    double mid = 0.5 * (lo + hi);
    if (GaussianMechanismDelta(mid, epsilon) > delta) {
      lo = mid;  // too little noise
    } else {
      hi = mid;
    }
  }
  return hi;
}

double GaussianMechanismEpsilon(double sigma, double delta) {
  double lo = 0.0;
  double hi = 200.0;
  for (int i = 0; i < 200; ++i) {
    double mid = 0.5 * (lo + hi);
    if (GaussianMechanismDelta(sigma, mid) > delta) {
      lo = mid;  // epsilon too small for this delta
    } else {
      hi = mid;
    }
  }
  return hi;
}

double GaussianMechanism(Rng& rng, double value, double sensitivity, double epsilon,
                         double delta) {
  double sigma = CalibrateGaussianSigma(epsilon, delta) * sensitivity;
  return value + rng.NextGaussian(0.0, sigma);
}

}  // namespace prochlo

#include "src/dp/threshold_dp.h"

#include "src/dp/mechanisms.h"

namespace prochlo {

ThresholdPrivacy AnalyzeThresholdPolicy(const ThresholdPolicy& policy, double target_delta) {
  return ThresholdPrivacy{GaussianMechanismEpsilon(policy.drop_sigma, target_delta),
                          target_delta};
}

}  // namespace prochlo

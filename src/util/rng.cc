#include "src/util/rng.h"

#include <cmath>
#include <numbers>

namespace prochlo {

namespace {
uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  if (bound == 0) {
    return 0;
  }
  // Lemire's nearly-divisionless method.
  __uint128_t m = static_cast<__uint128_t>(Next()) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      m = static_cast<__uint128_t>(Next()) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo + 1)));
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

double Rng::NextGaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 1e-300) {
    u1 = NextDouble();
  }
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = r * std::sin(theta);
  have_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::NextGaussian(double mean, double sigma) { return mean + sigma * NextGaussian(); }

int64_t Rng::NextRoundedTruncatedGaussian(double mean, double sigma) {
  double draw = NextGaussian(mean, sigma);
  int64_t rounded = static_cast<int64_t>(std::llround(draw));
  return rounded < 0 ? 0 : rounded;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace prochlo

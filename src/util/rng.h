// Deterministic pseudo-random number generation for simulations, workload
// synthesis, and tests.
//
// PROCHLO's *cryptographic* randomness lives in src/crypto/random.h; this RNG
// (xoshiro256**) is for everything whose statistical shape matters but whose
// unpredictability does not: workload generators, shuffles in simulations,
// Gaussian thresholding noise in experiments that must be reproducible.
#ifndef PROCHLO_SRC_UTIL_RNG_H_
#define PROCHLO_SRC_UTIL_RNG_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace prochlo {

// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform 64-bit value.
  uint64_t Next();

  // Uniform in [0, bound) without modulo bias (Lemire's method).
  uint64_t NextBelow(uint64_t bound);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Bernoulli(p).
  bool NextBool(double p);

  // Standard normal via Box-Muller (cached second variate).
  double NextGaussian();

  // N(mean, sigma^2).
  double NextGaussian(double mean, double sigma);

  // Rounded normal ⌊N(mean, sigma^2)⌉ truncated below at 0, as used by the
  // shuffler's randomized item-dropping (paper §3.5).
  int64_t NextRoundedTruncatedGaussian(double mean, double sigma);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = NextBelow(i);
      std::swap(items[i - 1], items[j]);
    }
  }

  // Forks an independent stream (for parallel workers).
  Rng Fork();

 private:
  uint64_t s_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace prochlo

#endif  // PROCHLO_SRC_UTIL_RNG_H_

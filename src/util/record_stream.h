// Pull-based streams of opaque byte records with a known cardinality.
//
// The ingestion tier accumulates epochs on disk that may be larger than RAM;
// the shuffle stage therefore consumes records through this interface rather
// than a materialized std::vector.  Streams are rewindable (Reset) because
// the Stash Shuffle can legitimately fail and retry the same input with
// fresh randomness.
#ifndef PROCHLO_SRC_UTIL_RECORD_STREAM_H_
#define PROCHLO_SRC_UTIL_RECORD_STREAM_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "src/util/bytes.h"

namespace prochlo {

class RecordStream {
 public:
  virtual ~RecordStream() = default;

  // Total records the stream will yield (known up front: epoch segment
  // counts are tracked by the spool, vectors know their size).
  virtual size_t size() const = 0;

  // Next record, or nullopt once size() records have been yielded.
  virtual std::optional<Bytes> Next() = 0;

  // Rewinds to the first record (for shuffle retry attempts).
  virtual void Reset() = 0;
};

// Adapter over a borrowed vector; yields copies so the caller's records
// survive shuffle retries.
class VectorRecordStream : public RecordStream {
 public:
  explicit VectorRecordStream(const std::vector<Bytes>& records) : records_(&records) {}

  size_t size() const override { return records_->size(); }

  std::optional<Bytes> Next() override {
    if (pos_ >= records_->size()) {
      return std::nullopt;
    }
    return (*records_)[pos_++];
  }

  void Reset() override { pos_ = 0; }

 private:
  const std::vector<Bytes>* records_;
  size_t pos_ = 0;
};

}  // namespace prochlo

#endif  // PROCHLO_SRC_UTIL_RECORD_STREAM_H_

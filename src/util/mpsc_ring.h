// Bounded lock-free multi-producer/single-consumer ring, the hand-off
// between client-facing threads and the ingestion tier's per-shard workers:
// producers enqueue sealed reports without ever touching a shard mutex or
// spool I/O, and each ring is drained by exactly one worker thread.
//
// The cell/sequence scheme follows Dmitry Vyukov's bounded MPMC queue,
// specialized to a single consumer (the dequeue side needs no CAS).  Every
// slot carries a sequence number that encodes both its lap and whether it
// holds a value:
//
//   seq == pos            slot free, a producer may claim it at `pos`
//   seq == pos + 1        slot full, the consumer may take it at `pos`
//   seq <  pos            ring full (producer) / empty (consumer)
//
// TryPush claims a slot with one CAS on the enqueue cursor and publishes the
// value with a release store of the sequence; TryPop consumes with acquire
// loads only.  Capacity is rounded up to a power of two.
#ifndef PROCHLO_SRC_UTIL_MPSC_RING_H_
#define PROCHLO_SRC_UTIL_MPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>

namespace prochlo {

template <typename T>
class MpscRing {
 public:
  explicit MpscRing(size_t capacity) {
    size_t rounded = 2;
    while (rounded < capacity) {
      rounded <<= 1;
    }
    mask_ = rounded - 1;
    cells_ = std::make_unique<Cell[]>(rounded);
    for (size_t i = 0; i < rounded; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  size_t capacity() const { return mask_ + 1; }

  // Multi-producer enqueue.  Returns false when the ring is full; `value`
  // is left untouched in that case, so the caller can back off and retry.
  bool TryPush(T&& value) {
    size_t pos = head_.load(std::memory_order_relaxed);
    Cell* cell;
    for (;;) {
      cell = &cells_[pos & mask_];
      size_t seq = cell->seq.load(std::memory_order_acquire);
      intptr_t dif = static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (dif == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          break;  // slot claimed
        }
      } else if (dif < 0) {
        return false;  // a full lap behind: ring is full
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(value);
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  // Single-consumer dequeue; must only ever be called from one thread.
  std::optional<T> TryPop() {
    size_t pos = tail_;
    Cell& cell = cells_[pos & mask_];
    size_t seq = cell.seq.load(std::memory_order_acquire);
    if (static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1) < 0) {
      return std::nullopt;  // slot not yet published: ring is empty
    }
    T value = std::move(cell.value);
    // Free the slot for the producers' next lap.
    cell.seq.store(pos + mask_ + 1, std::memory_order_release);
    tail_ = pos + 1;
    return value;
  }

 private:
  struct Cell {
    std::atomic<size_t> seq{0};
    T value{};
  };

  std::unique_ptr<Cell[]> cells_;
  size_t mask_ = 0;
  // Producers contend on head_; tail_ is owned by the single consumer.
  alignas(64) std::atomic<size_t> head_{0};
  alignas(64) size_t tail_ = 0;
};

}  // namespace prochlo

#endif  // PROCHLO_SRC_UTIL_MPSC_RING_H_

#include "src/util/serialization.h"

namespace prochlo {

void Writer::PutU8(uint8_t v) { buffer_.push_back(v); }

void Writer::PutU16(uint16_t v) {
  buffer_.push_back(static_cast<uint8_t>(v));
  buffer_.push_back(static_cast<uint8_t>(v >> 8));
}

void Writer::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buffer_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void Writer::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void Writer::PutBytes(ByteSpan data) { buffer_.insert(buffer_.end(), data.begin(), data.end()); }

void Writer::PutLengthPrefixed(ByteSpan data) {
  PutU32(static_cast<uint32_t>(data.size()));
  PutBytes(data);
}

void Writer::PutString(const std::string& s) { PutLengthPrefixed(ToBytes(s)); }

bool Reader::Need(size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

bool Reader::GetU8(uint8_t* v) {
  if (!Need(1)) {
    return false;
  }
  *v = data_[pos_++];
  return true;
}

bool Reader::GetU16(uint16_t* v) {
  if (!Need(2)) {
    return false;
  }
  *v = static_cast<uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
  pos_ += 2;
  return true;
}

bool Reader::GetU32(uint32_t* v) {
  if (!Need(4)) {
    return false;
  }
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  *v = out;
  return true;
}

bool Reader::GetU64(uint64_t* v) {
  if (!Need(8)) {
    return false;
  }
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  *v = out;
  return true;
}

bool Reader::GetBytes(size_t n, Bytes* out) {
  if (!Need(n)) {
    return false;
  }
  out->assign(data_.begin() + pos_, data_.begin() + pos_ + n);
  pos_ += n;
  return true;
}

bool Reader::GetLengthPrefixed(Bytes* out) {
  uint32_t len = 0;
  if (!GetU32(&len) || !Need(len)) {
    return false;
  }
  return GetBytes(len, out);
}

bool Reader::GetString(std::string* out) {
  Bytes raw;
  if (!GetLengthPrefixed(&raw)) {
    return false;
  }
  *out = ToString(raw);
  return true;
}

}  // namespace prochlo

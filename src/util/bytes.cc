#include "src/util/bytes.h"

#include <cassert>

namespace prochlo {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int HexNibble(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  return -1;
}
}  // namespace

std::string HexEncode(ByteSpan data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

Bytes HexDecode(const std::string& hex) {
  if (hex.size() % 2 != 0) {
    return {};
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexNibble(hex[i]);
    int lo = HexNibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return {};
    }
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

bool ConstantTimeEquals(ByteSpan a, ByteSpan b) {
  if (a.size() != b.size()) {
    return false;
  }
  uint8_t acc = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    acc |= static_cast<uint8_t>(a[i] ^ b[i]);
  }
  return acc == 0;
}

void XorInto(ByteSpan src, std::span<uint8_t> dst) {
  assert(src.size() == dst.size());
  for (size_t i = 0; i < src.size(); ++i) {
    dst[i] ^= src[i];
  }
}

Bytes ToBytes(const std::string& s) { return Bytes(s.begin(), s.end()); }

std::string ToString(ByteSpan b) { return std::string(b.begin(), b.end()); }

}  // namespace prochlo

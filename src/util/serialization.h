// Little-endian wire serialization used by the report format and by the
// enclave's sealed structures.  Deliberately minimal: fixed-width integers,
// length-prefixed byte strings, and a cursor-based reader that fails softly.
#ifndef PROCHLO_SRC_UTIL_SERIALIZATION_H_
#define PROCHLO_SRC_UTIL_SERIALIZATION_H_

#include <cstdint>
#include <string>

#include "src/util/bytes.h"

namespace prochlo {

// Appends fixed-width little-endian integers and length-prefixed blobs.
class Writer {
 public:
  void PutU8(uint8_t v);
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  // Raw bytes, no length prefix.
  void PutBytes(ByteSpan data);
  // u32 length prefix + bytes.
  void PutLengthPrefixed(ByteSpan data);
  void PutString(const std::string& s);

  const Bytes& data() const { return buffer_; }
  Bytes Take() { return std::move(buffer_); }

 private:
  Bytes buffer_;
};

// Cursor-based reader over a byte span.  All getters return false (and leave
// the output untouched) once the cursor has failed; `ok()` reports health.
class Reader {
 public:
  explicit Reader(ByteSpan data) : data_(data) {}

  bool GetU8(uint8_t* v);
  bool GetU16(uint16_t* v);
  bool GetU32(uint32_t* v);
  bool GetU64(uint64_t* v);
  bool GetBytes(size_t n, Bytes* out);
  bool GetLengthPrefixed(Bytes* out);
  bool GetString(std::string* out);

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  bool Need(size_t n);

  ByteSpan data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace prochlo

#endif  // PROCHLO_SRC_UTIL_SERIALIZATION_H_

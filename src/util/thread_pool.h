// A small fixed-size thread pool used to parallelize the Stash Shuffle's
// distribution phase (the paper notes distribution parallelizes well because
// its cost is dominated by public-key operations).
#ifndef PROCHLO_SRC_UTIL_THREAD_POOL_H_
#define PROCHLO_SRC_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "src/util/thread_annotations.h"

namespace prochlo {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task; tasks may run on any worker in any order.
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished.
  void Wait();

  // Runs fn(i) for i in [0, n) across the pool and waits for completion.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  Mutex mu_;
  std::queue<std::function<void()>> tasks_ GUARDED_BY(mu_);
  CondVar task_available_;
  CondVar all_done_;
  size_t in_flight_ GUARDED_BY(mu_) = 0;
  bool shutting_down_ GUARDED_BY(mu_) = false;
};

// Null-tolerant dispatch: runs fn(i) for i in [0, n) on the pool when one is
// supplied, inline otherwise.  The common shape for the crypto/shuffle hot
// loops, which all take an optional borrowed pool.
inline void ParallelFor(ThreadPool* pool, size_t n, const std::function<void(size_t)>& fn) {
  if (pool != nullptr) {
    pool->ParallelFor(n, fn);
  } else {
    for (size_t i = 0; i < n; ++i) {
      fn(i);
    }
  }
}

}  // namespace prochlo

#endif  // PROCHLO_SRC_UTIL_THREAD_POOL_H_

#include "src/util/thread_pool.h"

namespace prochlo {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = 1;
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutting_down_ = true;
  }
  task_available_.NotifyAll();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  while (in_flight_ != 0) {
    all_done_.Wait(mu_);
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  // Chunk the index space so that small bodies do not drown in queue traffic.
  size_t chunks = std::min(n, num_threads() * 4);
  if (chunks == 0) {
    return;
  }
  size_t per_chunk = (n + chunks - 1) / chunks;
  for (size_t c = 0; c < chunks; ++c) {
    size_t begin = c * per_chunk;
    size_t end = std::min(n, begin + per_chunk);
    if (begin >= end) {
      break;
    }
    Submit([begin, end, &fn] {
      for (size_t i = begin; i < end; ++i) {
        fn(i);
      }
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutting_down_ && tasks_.empty()) {
        task_available_.Wait(mu_);
      }
      if (tasks_.empty()) {
        return;  // Shutting down with an empty queue.
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      MutexLock lock(mu_);
      if (--in_flight_ == 0) {
        all_done_.NotifyAll();
      }
    }
  }
}

}  // namespace prochlo

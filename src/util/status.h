// Lightweight error-handling vocabulary for the PROCHLO libraries.
//
// The code base does not use exceptions for recoverable errors (oblivious
// shuffles can *fail* legitimately and must be retried, decryption of a
// tampered record must be reportable).  `Result<T>` is a minimal StatusOr-like
// type: either a value or an error string.
#ifndef PROCHLO_SRC_UTIL_STATUS_H_
#define PROCHLO_SRC_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace prochlo {

// Error carries a human-readable message.  Comparison is by message, which is
// sufficient for tests.
struct Error {
  std::string message;

  bool operator==(const Error& other) const { return message == other.message; }
};

// A value-or-error sum type.  `ok()` must be checked before `value()`.
//
// [[nodiscard]]: ignoring a Result silently drops an error (and the value).
// Deliberate best-effort discards must be spelled `(void)expr;` with a
// one-line justification comment.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error error) : repr_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const Error& error() const {
    assert(!ok());
    return std::get<Error>(repr_);
  }

  // Convenience: value or a caller-provided default.
  T value_or(T fallback) const {
    if (ok()) {
      return std::get<T>(repr_);
    }
    return fallback;
  }

 private:
  std::variant<T, Error> repr_;
};

// Result<void> analogue.
//
// [[nodiscard]] on the class makes every Status-returning call a compile
// error to ignore; `(void)` with a justification is the deliberate opt-out.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  static Status Ok() { return Status(); }

  bool ok() const { return !error_.has_value(); }
  const Error& error() const {
    assert(!ok());
    return *error_;
  }

 private:
  std::optional<Error> error_;
};

}  // namespace prochlo

#endif  // PROCHLO_SRC_UTIL_STATUS_H_

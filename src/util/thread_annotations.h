// Clang thread-safety annotations and the annotated lock vocabulary used by
// every concurrent type in the repo.
//
// Under clang, `-Wthread-safety` turns the lock protocol each class documents
// (which mutex guards which field, which *Locked() helper requires which
// capability, which mutex orders before which) into compile errors.  Under
// GCC the macros expand to nothing and the wrappers are zero-cost veneers
// over the std primitives, so the TSan/ASan matrix still exercises the exact
// same code.
//
// Vocabulary (mirrors the capability names in the clang docs):
//   Mutex            exclusive capability over std::mutex
//   SharedMutex      shared/exclusive capability over std::shared_mutex
//   MutexLock        scoped exclusive lock, relockable (Unlock()/Lock())
//   ReaderMutexLock  scoped shared lock on a SharedMutex
//   WriterMutexLock  scoped exclusive lock on a SharedMutex
//   CondVar          condition variable that waits on a held Mutex
//
// Conventions (enforced by scripts/lint.py; see docs/static-analysis.md):
//   - no raw std::mutex / std::shared_mutex / std::condition_variable outside
//     this header — every lock is an annotated Mutex or SharedMutex;
//   - every guarded field carries GUARDED_BY(mu_);
//   - every *Locked() helper carries REQUIRES(mu_);
//   - condition waits are explicit `while (!pred) cv.Wait(mu_);` loops in the
//     function that holds the capability — never lambda predicates, which the
//     analysis would treat as unlocked contexts.
#ifndef PROCHLO_SRC_UTIL_THREAD_ANNOTATIONS_H_
#define PROCHLO_SRC_UTIL_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#if defined(__clang__) && defined(__has_attribute)
#define PROCHLO_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PROCHLO_THREAD_ANNOTATION(x)  // no-op under GCC/MSVC
#endif

#define CAPABILITY(x) PROCHLO_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY PROCHLO_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) PROCHLO_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) PROCHLO_THREAD_ANNOTATION(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) PROCHLO_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) PROCHLO_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define REQUIRES(...) PROCHLO_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  PROCHLO_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) PROCHLO_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  PROCHLO_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) PROCHLO_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  PROCHLO_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) PROCHLO_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) PROCHLO_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) PROCHLO_THREAD_ANNOTATION(assert_capability(x))
#define RETURN_CAPABILITY(x) PROCHLO_THREAD_ANNOTATION(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS PROCHLO_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace prochlo {

// Exclusive capability.  Lowercase lock()/unlock() satisfy BasicLockable so
// std::condition_variable_any (inside CondVar) can wait on the Mutex itself;
// the wait's internal unlock/relock lives in a system header, where clang
// suppresses thread-safety diagnostics, so the capability stays logically
// held across Wait() — exactly the semantics the annotations describe.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // BasicLockable surface for CondVar; prefer Lock()/Unlock() elsewhere.
  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

// Shared/exclusive capability over std::shared_mutex.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

// Scoped exclusive lock.  Relockable (Unlock()/Lock()) so fsync-outside-the-
// lock patterns (SessionJournal::SyncUpTo) keep their scoped shape.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu), owned_(true) { mu_.Lock(); }
  ~MutexLock() RELEASE() {
    if (owned_) {
      mu_.Unlock();
    }
  }

  void Unlock() RELEASE() {
    mu_.Unlock();
    owned_ = false;
  }
  void Lock() ACQUIRE() {
    mu_.Lock();
    owned_ = true;
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
  bool owned_;
};

class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() RELEASE() { mu_.UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~WriterMutexLock() RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// Condition variable bound to an annotated Mutex at each wait site.  Waits
// REQUIRE the mutex: callers hold the capability, spell the predicate as an
// explicit loop, and the analysis sees every predicate read as guarded.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu); }

  // False on timeout (the deadline passed without a notification).
  template <typename Clock, typename Duration>
  bool WaitUntil(Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      REQUIRES(mu) {
    return cv_.wait_until(mu, deadline) == std::cv_status::no_timeout;
  }

  template <typename Rep, typename Period>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout)
      REQUIRES(mu) {
    return cv_.wait_for(mu, timeout) == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace prochlo

#endif  // PROCHLO_SRC_UTIL_THREAD_ANNOTATIONS_H_

// Byte-buffer helpers shared across the PROCHLO libraries: hex codecs,
// constant-time comparison, and XOR utilities.
#ifndef PROCHLO_SRC_UTIL_BYTES_H_
#define PROCHLO_SRC_UTIL_BYTES_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace prochlo {

using Bytes = std::vector<uint8_t>;
using ByteSpan = std::span<const uint8_t>;

// Lowercase hex encoding of `data`.
std::string HexEncode(ByteSpan data);

// Decodes a hex string; returns an empty vector on malformed input of odd
// length or non-hex characters.
Bytes HexDecode(const std::string& hex);

// Constant-time equality over equal-length buffers; returns false on length
// mismatch (length is assumed public).  Crypto-tier tag/MAC verification
// should prefer ct::CtEq (src/crypto/ct.h), which is the same XOR-accumulate
// but routes the verdict through the declassification barrier the poison
// harness checks.
bool ConstantTimeEquals(ByteSpan a, ByteSpan b);

// XORs `src` into `dst`; both must have the same size.
void XorInto(ByteSpan src, std::span<uint8_t> dst);

// Converts a string to its byte representation (no copy-free path needed at
// our scales).
Bytes ToBytes(const std::string& s);
std::string ToString(ByteSpan b);

}  // namespace prochlo

#endif  // PROCHLO_SRC_UTIL_BYTES_H_

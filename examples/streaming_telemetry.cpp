// Streaming telemetry: the PROCHLO deployment as the paper runs it — a
// standing shuffler frontend receiving sealed reports from clients that
// arrive staggered over time, not as one prepared batch.
//
// Client cohorts come online in waves (think: devices checking in around
// the top of the hour).  Each wave's simulator seals its reports through
// the batch encoder fast path (Encoder::BatchSealReports — one BatchBaseMult
// for all ephemeral keys), frames them for the wire, and delivers them to
// the frontend in shuffled arrival order.  The frontend shards by ciphertext
// hash, spools every report to disk, cuts an epoch when it is both old
// enough and large enough to lose reports in a crowd (§4.2), and drains each
// sealed epoch through shuffle -> threshold -> analyze.
//
//   build/examples/streaming_telemetry
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "src/service/frontend.h"
#include "src/util/rng.h"

int main() {
  using namespace prochlo;

  // 1. A standing frontend: 4 ingestion shards, epochs cut when they hold
  //    >= 300 reports and at least two scheduler ticks have passed, spooled
  //    under a scratch directory so epochs survive restarts.
  std::string spool_dir =
      (std::filesystem::temp_directory_path() / "prochlo-streaming-telemetry").string();
  std::filesystem::remove_all(spool_dir);

  FrontendConfig config;
  config.pipeline.shuffler.threshold_mode = ThresholdMode::kRandomized;
  config.pipeline.shuffler.policy = ThresholdPolicy{20, 10, 2};
  config.pipeline.seed = "streaming-telemetry";
  config.ingest.num_shards = 4;
  config.ingest.max_epoch_age = 2;
  config.ingest.min_epoch_reports = 300;
  config.spool_dir = spool_dir;

  ShufflerFrontend frontend(config);
  if (auto status = frontend.Start(); !status.ok()) {
    std::fprintf(stderr, "frontend start failed: %s\n", status.error().message.c_str());
    return 1;
  }

  // 2. Five waves of clients report which codec their calls negotiated.
  //    Each wave is a cohort sealed in one batch pass; the rare codec
  //    should never clear the crowd threshold.
  const Encoder encoder = frontend.MakeEncoder();
  SecureRandom client_rng(ToBytes("telemetry-clients"));
  Rng arrival_rng(0x7e1e);
  uint64_t delivered = 0;

  for (int wave = 0; wave < 5; ++wave) {
    std::vector<std::pair<std::string, std::string>> cohort;
    for (int i = 0; i < 110; ++i) cohort.emplace_back("codec-opus", "codec-opus");
    for (int i = 0; i < 60; ++i) cohort.emplace_back("codec-aac", "codec-aac");
    for (int i = 0; i < (wave % 2 ? 4 : 2); ++i) {
      cohort.emplace_back("codec-exotic", "codec-exotic");
    }

    auto sealed = encoder.BatchSealReports(cohort, client_rng);
    if (!sealed.ok()) {
      std::fprintf(stderr, "cohort seal failed: %s\n", sealed.error().message.c_str());
      return 1;
    }
    // Staggered arrival: frames reach the frontend in no particular order.
    std::vector<Bytes> frames;
    for (const auto& report : sealed.value()) {
      frames.push_back(EncodeFrame(report));
    }
    arrival_rng.Shuffle(frames);
    for (const auto& frame : frames) {
      if (auto status = frontend.AcceptFrameStream(frame); !status.ok()) {
        std::fprintf(stderr, "ingest failed: %s\n", status.error().message.c_str());
        return 1;
      }
    }
    delivered += frames.size();
    // The scheduler's cadence; age-cuts ripe epochs.  A failed cut means a
    // wedged spool — exactly the error Tick() now surfaces.
    if (auto status = frontend.Tick(); !status.ok()) {
      std::fprintf(stderr, "epoch cut failed: %s\n", status.error().message.c_str());
      return 1;
    }

    std::printf("wave %d delivered: %3zu reports (epoch %lu holds %zu)\n", wave,
                frames.size(), static_cast<unsigned long>(frontend.current_epoch()),
                frontend.current_epoch_size());
  }
  if (auto status = frontend.CutEpoch(); !status.ok()) {  // end-of-day flush
    std::fprintf(stderr, "final epoch cut failed: %s\n", status.error().message.c_str());
    return 1;
  }

  // 3. Drain every sealed epoch through shuffle -> threshold -> analyze.
  auto drained = frontend.DrainSealedEpochs();
  if (!drained.ok()) {
    std::fprintf(stderr, "drain failed: %s\n", drained.failure->error.message.c_str());
    return 1;
  }
  std::printf("\ndelivered %lu reports across %zu epoch(s)\n",
              static_cast<unsigned long>(delivered), drained.results.size());
  for (const auto& epoch : drained.results) {
    std::printf("\nepoch %lu (%zu reports) analyzer histogram:\n",
                static_cast<unsigned long>(epoch.epoch), epoch.reports);
    for (const auto& [codec, count] : epoch.result.histogram) {
      std::printf("  %-14s %lu\n", codec.c_str(), static_cast<unsigned long>(count));
    }
    if (epoch.result.histogram.count("codec-exotic") == 0) {
      std::printf("  (codec-exotic stayed below the crowd threshold — never materialized)\n");
    }
  }

  const auto& stats = frontend.stats();
  std::printf("\nfrontend: %lu frames ok, %lu corrupt, %lu epochs drained\n",
              static_cast<unsigned long>(stats.frames_ok),
              static_cast<unsigned long>(stats.frames_corrupt),
              static_cast<unsigned long>(stats.epochs_drained));
  std::filesystem::remove_all(spool_dir);
  return 0;
}

// Quickstart: the smallest useful PROCHLO deployment.
//
// Clients report which UI theme they use; the operator wants the histogram
// without being able to single anyone out.  One ESA pipeline with the
// paper's default randomized thresholding (T=20, D=10, sigma=2 — giving
// (2.25, 1e-6)-DP for the set of themes that reach the analyzer) does it in
// a dozen lines.
//
//   build/examples/quickstart
#include <cstdio>

#include "src/core/pipeline.h"
#include "src/dp/threshold_dp.h"

int main() {
  using namespace prochlo;

  // 1. Configure the pipeline (keys are generated inside; clients would
  //    fetch and attest them, see examples/vocab_survey.cpp).
  PipelineConfig config;
  config.shuffler.threshold_mode = ThresholdMode::kRandomized;
  config.shuffler.policy = ThresholdPolicy{20, 10, 2};

  Pipeline pipeline(config);

  // 2. Clients report their values (here: synthesized; crowd ID = value).
  std::vector<std::string> reports;
  for (int i = 0; i < 400; ++i) {
    reports.push_back("theme-dark");
  }
  for (int i = 0; i < 150; ++i) {
    reports.push_back("theme-light");
  }
  for (int i = 0; i < 8; ++i) {
    reports.push_back("theme-custom-" + std::to_string(i));  // 8 unique themes
  }

  // 3. Run encode -> shuffle -> analyze.
  auto result = pipeline.RunValues(reports);
  if (!result.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n", result.error().message.c_str());
    return 1;
  }

  // 4. The analyzer's database: only themes whose crowd cleared the noisy
  //    threshold; rare (identifying) themes never materialize.
  std::printf("Analyzer-side histogram (DP: eps=%.2f, delta=1e-6):\n",
              AnalyzeThresholdPolicy(config.shuffler.policy, 1e-6).epsilon);
  for (const auto& [theme, count] : result.value().histogram) {
    std::printf("  %-14s %lu\n", theme.c_str(), static_cast<unsigned long>(count));
  }
  std::printf("Shuffler: %lu crowds seen, %lu forwarded, %lu reports dropped as noise\n",
              static_cast<unsigned long>(result.value().shuffler_stats.crowds_seen),
              static_cast<unsigned long>(result.value().shuffler_stats.crowds_forwarded),
              static_cast<unsigned long>(result.value().shuffler_stats.dropped_noise));
  return 0;
}

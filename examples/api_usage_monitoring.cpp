// The paper's §2.1 motivating use case: which system APIs does each
// application use?  Deprecating a legacy API requires knowing who still
// calls it — but app identity x API usage is privacy-sensitive (apps and
// API combinations can be unique and incriminating).
//
// ESA treatment (§3): the encoder FRAGMENTS each client's (app, API-bitmap)
// into separate (app, single-API) reports, destroying the unique usage
// *pattern* while preserving every per-(app, API) statistic the analysis
// needs; the crowd ID is the app, so rare (secret) apps never reach the
// analyzer at all.
//
//   build/examples/api_usage_monitoring
#include <cstdio>
#include <map>

#include "src/core/pipeline.h"
#include "src/util/rng.h"

namespace {

constexpr int kNumApis = 16;

struct ClientState {
  std::string app;
  uint32_t api_bitmap;  // which of the 16 APIs this install uses
};

}  // namespace

int main() {
  using namespace prochlo;
  Rng rng(7);

  // Synthesize a population: three common apps with characteristic API
  // sets, plus a rare in-development app whose existence is a secret.
  std::vector<ClientState> clients;
  auto add_population = [&](const std::string& app, uint32_t base_apis, int count) {
    for (int i = 0; i < count; ++i) {
      uint32_t bitmap = base_apis;
      // Each install uses a couple of extra APIs at random.
      bitmap |= 1u << rng.NextBelow(kNumApis);
      bitmap |= 1u << rng.NextBelow(kNumApis);
      clients.push_back({app, bitmap});
    }
  };
  add_population("browser", 0b0000'0000'1111'0111, 300);
  add_population("editor", 0b0000'1111'0000'0011, 200);
  add_population("game", 0b1111'0000'0000'1001, 120);
  add_population("secret-prototype", 0b1010'1010'1010'1010, 3);  // must stay invisible

  PipelineConfig config;
  config.shuffler.threshold_mode = ThresholdMode::kRandomized;
  config.shuffler.policy = ThresholdPolicy{20, 10, 2};
  Pipeline pipeline(config);

  // Encoder-side fragmentation: one report per (app, used API).  No report
  // carries the full bitmap, so no report is uniquely identifying.
  std::vector<std::pair<std::string, std::string>> fragments;
  for (const auto& client : clients) {
    for (int api = 0; api < kNumApis; ++api) {
      if (client.api_bitmap & (1u << api)) {
        // crowd ID = app: the shuffler suppresses apps without a crowd.
        fragments.emplace_back(client.app, client.app + "/api" + std::to_string(api));
      }
    }
  }

  auto result = pipeline.Run(fragments);
  if (!result.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n", result.error().message.c_str());
    return 1;
  }

  // Analyzer: a plain database of (app, API) counts — directly usable for
  // the deprecation question.
  std::map<std::string, std::map<int, uint64_t>> by_app;
  for (const auto& [key, count] : result.value().histogram) {
    auto slash = key.find("/api");
    by_app[key.substr(0, slash)][std::stoi(key.substr(slash + 4))] = count;
  }

  std::printf("Per-app API usage reaching the analyzer:\n");
  for (const auto& [app, apis] : by_app) {
    std::printf("  %-18s", app.c_str());
    for (const auto& [api, count] : apis) {
      std::printf(" api%d:%lu", api, static_cast<unsigned long>(count));
    }
    std::printf("\n");
  }
  bool secret_leaked = by_app.contains("secret-prototype");
  std::printf("\n'secret-prototype' (3 installs, below the crowd threshold) visible: %s\n",
              secret_leaked ? "YES - BUG" : "no");
  std::printf("Which APIs look deprecatable? Count apps still using api15:\n");
  int users_of_api15 = 0;
  for (const auto& [app, apis] : by_app) {
    users_of_api15 += apis.contains(15) ? 1 : 0;
  }
  std::printf("  %d of %zu visible apps use api15\n", users_of_api15, by_app.size());
  return secret_leaked ? 1 : 0;
}

// The §5.5 Flix use case as an application: build a movie recommender from
// ANONYMOUS FOUR-TUPLES instead of a linkable ratings database.
//
// Each client fragments its ratings into (movie_i, r_i, movie_j, r_j) pairs
// (a capped random subset, with 10% of movie ids randomized), and tuples
// must clear the crowd threshold on both halves.  The analyzer assembles the
// item-item covariance sufficient statistics and serves predictions — the
// Netflix-deanonymization attack surface (per-user rating vectors) never
// exists.
//
//   build/examples/flix_recommender
#include <cstdio>

#include "src/analysis/covariance.h"
#include "src/workload/flix.h"

int main() {
  using namespace prochlo;
  Rng rng(2026);

  // A small synthetic population.
  FlixConfig config;
  config.num_users = 4'000;
  config.num_movies = 120;
  config.mean_ratings_per_user = 18;
  FlixWorkload workload(config);
  FlixDataset dataset = workload.Generate(rng);
  std::printf("Synth dataset: %lu train ratings, %zu test ratings, %u movies\n",
              static_cast<unsigned long>(dataset.TrainSize()), dataset.test.size(),
              config.num_movies);

  // Client-side encoding (what would ride the ESA pipeline).
  FlixEncodingConfig encoding;
  encoding.tuple_cap = 300;
  encoding.movie_randomization = 0.10;
  encoding.num_movies = config.num_movies;
  std::vector<FourTuple> tuples;
  Rng client_rng(3);
  for (const auto& user_ratings : dataset.train_by_user) {
    auto coded = EncodeUserRatings(user_ratings, encoding, client_rng);
    tuples.insert(tuples.end(), coded.begin(), coded.end());
  }
  std::printf("Collected %zu anonymous four-tuples (capped, 10%% movie-randomized)\n",
              tuples.size());

  // Shuffler-side thresholding on both (movie, rating) halves.
  Rng noise_rng(4);
  tuples = ThresholdTuples(std::move(tuples), /*threshold=*/20, /*drop_mean=*/10,
                           /*drop_sigma=*/2, noise_rng);
  std::printf("After two-crowd thresholding: %zu tuples\n", tuples.size());

  // Analyzer: covariance model + predictions.
  CovarianceModel model(config.num_movies);
  model.AddTuples(tuples);
  model.Finalize();
  double rmse = model.Rmse(dataset.test, dataset.train_by_user);
  std::printf("Held-out RMSE of the anonymous-collection model: %.4f\n", rmse);

  // Recommend: for one test user, rank unseen movies by predicted rating.
  const auto& user_ratings = dataset.train_by_user[0];
  std::printf("\nUser 0 rated %zu movies; top recommendations among unseen ones:\n",
              user_ratings.size());
  std::vector<std::pair<double, uint32_t>> scored;
  for (uint32_t m = 0; m < config.num_movies; ++m) {
    bool seen = false;
    for (const auto& r : user_ratings) {
      seen |= (r.movie == m);
    }
    if (!seen) {
      scored.emplace_back(model.Predict(user_ratings, m), m);
    }
  }
  std::sort(scored.rbegin(), scored.rend());
  for (int i = 0; i < 5 && i < static_cast<int>(scored.size()); ++i) {
    std::printf("  movie%-4u predicted %.2f stars\n", scored[i].second, scored[i].first);
  }
  return 0;
}

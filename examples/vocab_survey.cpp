// The full-strength §5.2 arrangement, spelled out step by step:
//
//   * the shuffler runs in a (simulated) SGX enclave; clients VERIFY ITS
//     ATTESTATION before trusting its key (§4.1.1);
//   * values are SECRET-SHARE ENCODED (t = 20): the analyzer can only
//     decrypt words that at least 20 distinct clients reported (§4.2);
//   * crowd IDs are hashes of the word, and the enclave-hosted shuffler
//     shuffles OBLIVIOUSLY with the Stash Shuffle before thresholding
//     (§4.1.4, §4.1.5).
//
// What the operator learns: the histogram of common words.  What nobody
// learns: any word reported by fewer than ~20 people — not the analyzer
// (shares don't interpolate), not the shuffler host (oblivious shuffle +
// attested enclave), not a network observer (nested encryption).
//
//   build/examples/vocab_survey
#include <cstdio>

#include "src/core/analyzer.h"
#include "src/core/encoder.h"
#include "src/core/shuffler.h"
#include "src/workload/vocab.h"

int main() {
  using namespace prochlo;
  SecureRandom rng(ToBytes("vocab-survey-example"));
  Rng noise_rng(99);

  // --- Infrastructure: Intel root, an SGX platform, the shuffler enclave.
  IntelRootAuthority intel(rng);
  auto platform = intel.ProvisionPlatform(rng);
  Enclave enclave(EnclaveConfig{"prochlo-shuffler"}, platform, rng);

  ShufflerConfig shuffler_config;
  shuffler_config.threshold_mode = ThresholdMode::kRandomized;
  shuffler_config.policy = ThresholdPolicy{20, 10, 2};
  shuffler_config.use_stash_shuffle = true;  // oblivious path inside the enclave
  Shuffler shuffler(enclave, shuffler_config);

  Analyzer analyzer = Analyzer::Create(rng);

  // --- Client side: attest, then encode.
  auto attested = VerifyShufflerAttestation(enclave.quote(), MeasureCode("prochlo-shuffler"),
                                            intel.root_public());
  if (!attested.ok()) {
    std::fprintf(stderr, "attestation failed: %s\n", attested.error().message.c_str());
    return 1;
  }
  std::printf("Attestation verified: enclave measurement OK, key bound to quote.\n");

  EncoderConfig encoder_config;
  encoder_config.shuffler_public = attested.value();
  encoder_config.analyzer_public = analyzer.public_key();
  encoder_config.secret_share_threshold = 20;
  encoder_config.payload_size = 192;
  Encoder encoder(encoder_config);

  // 600 clients sample words from a tiny Zipf vocabulary; a few report a
  // sensitive unique string that must never surface.
  VocabConfig vocab_config;
  vocab_config.vocabulary_size = 30;
  VocabWorkload vocab(vocab_config);
  Rng word_rng(5);
  std::vector<Bytes> reports;
  for (int i = 0; i < 600; ++i) {
    std::string word = VocabWorkload::WordName(vocab.SampleWordRank(word_rng));
    auto report = encoder.EncodeValue(word, rng);
    reports.push_back(std::move(report).value());
  }
  for (int i = 0; i < 3; ++i) {
    auto report = encoder.EncodeValue("my-private-key-material-xyzzy", rng);
    reports.push_back(std::move(report).value());
  }

  // --- Shuffler (in-enclave): oblivious shuffle, threshold, strip.
  auto forwarded = shuffler.ProcessBatch(reports, rng, noise_rng);
  if (!forwarded.ok()) {
    std::fprintf(stderr, "shuffler failed: %s\n", forwarded.error().message.c_str());
    return 1;
  }
  std::printf("Shuffler: %lu reports in, %lu forwarded, %lu crowds -> %lu crowds "
              "(enclave processed %.1fx the input obliviously)\n",
              static_cast<unsigned long>(shuffler.stats().received),
              static_cast<unsigned long>(shuffler.stats().forwarded),
              static_cast<unsigned long>(shuffler.stats().crowds_seen),
              static_cast<unsigned long>(shuffler.stats().crowds_forwarded),
              static_cast<double>(enclave.traffic().items_in) / reports.size());

  // --- Analyzer: decrypt, group shares, recover common words.
  auto payloads = analyzer.DecryptBatch(forwarded.value());
  auto recovered = Analyzer::RecoverSecretShared(payloads, 20);

  std::printf("\nRecovered histogram (top words only; %lu groups stayed locked):\n",
              static_cast<unsigned long>(recovered.locked_groups));
  for (const auto& [word, count] : recovered.values) {
    std::printf("  %-10s %lu\n", word.c_str(), static_cast<unsigned long>(count));
  }
  bool leaked = recovered.values.contains("my-private-key-material-xyzzy");
  std::printf("\nSensitive unique value visible to the analyzer: %s\n",
              leaked ? "YES - BUG" : "no (fewer than t=20 shares: cryptographically locked)");
  return leaked ? 1 : 0;
}

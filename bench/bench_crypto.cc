// Crypto microbenchmarks (google-benchmark): the primitive costs that drive
// the pipeline tables, plus the §5.2 claim that secret-share encoding costs
// the client "less than 50 µs per encoding" (with OpenSSL; our from-scratch
// field arithmetic is the constant to compare against).
#include <benchmark/benchmark.h>

#include "bench/json_out.h"
#include "src/core/report.h"
#include "src/crypto/ecdsa.h"
#include "src/crypto/elgamal.h"
#include "src/crypto/hash_to_curve.h"
#include "src/crypto/secret_share.h"
#include "src/crypto/sha256.h"

namespace prochlo {
namespace {

void BM_Sha256_1KB(benchmark::State& state) {
  Bytes data(1024, 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1KB);

void BM_AesGcmSeal_318B(benchmark::State& state) {
  SecureRandom rng(ToBytes("bench"));
  AesGcm aead(rng.RandomBytes(16));
  Bytes plaintext(318, 0x55);
  GcmNonce nonce = rng.RandomNonce();
  for (auto _ : state) {
    benchmark::DoNotOptimize(aead.Seal(nonce, plaintext, {}));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 318);
}
BENCHMARK(BM_AesGcmSeal_318B);

// Variable-base multiplication (wNAF): the shuffler's outer-layer ECDH open
// against a fresh ephemeral key every report — nothing to precompute.
void BM_P256_ScalarMult(benchmark::State& state) {
  SecureRandom rng(ToBytes("bench-ec"));
  const P256& curve = P256::Get();
  U256 k = rng.RandomScalar(curve.order());
  EcPoint p = curve.generator();
  for (auto _ : state) {
    p = curve.ScalarMult(p, k);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_P256_ScalarMult);

// The constant-time ladder for Secret<> scalars (fixed-window, full-scan
// masked lookups): the long-term-key path.  The gap against
// BM_P256_ScalarMult is the price of timing hygiene — paid per key
// operation, never on the batch surfaces.
void BM_P256_ScalarMultSecret(benchmark::State& state) {
  SecureRandom rng(ToBytes("bench-ec-ct"));
  const P256& curve = P256::Get();
  Secret<U256> k = rng.RandomSecretScalar(curve.order());
  EcPoint p = curve.generator();
  for (auto _ : state) {
    p = curve.ScalarMultSecret(p, k);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_P256_ScalarMultSecret);

// The pre-wNAF reference ladder (plain double-and-add, one bit at a time):
// the baseline the wNAF and batched paths are cross-checked against.
void BM_P256_ScalarMult_DoubleAdd(benchmark::State& state) {
  SecureRandom rng(ToBytes("bench-ec-ref"));
  const P256& curve = P256::Get();
  U256 k = rng.RandomScalar(curve.order());
  EcPoint p = curve.generator();
  for (auto _ : state) {
    p = curve.FromJacobian(curve.JacScalarMultReference(curve.ToJacobian(p), k));
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_P256_ScalarMult_DoubleAdd);

// Batched variable-base multiplication in the decrypt shape: 256 distinct
// ephemeral points, one private scalar.  All odd-multiple wNAF tables are
// normalized with one shared inversion (mixed additions in every main loop)
// and the results with a second.
void BM_P256_BatchScalarMult256(benchmark::State& state) {
  SecureRandom rng(ToBytes("bench-ec-batchvar"));
  const P256& curve = P256::Get();
  U256 k = rng.RandomScalar(curve.order());
  std::vector<EcPoint> points;
  for (int i = 0; i < 256; ++i) {
    points.push_back(curve.BaseMult(rng.RandomScalar(curve.order())));
  }
  std::vector<U256> scalars(points.size(), k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve.BatchScalarMult(points, scalars));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_P256_BatchScalarMult256);

// The generic double-and-add path on G, bypassing the fixed-base table —
// the baseline every BaseMult used to pay.
void BM_P256_BaseMult_Generic(benchmark::State& state) {
  SecureRandom rng(ToBytes("bench-ec-generic"));
  const P256& curve = P256::Get();
  U256 k = rng.RandomScalar(curve.order());
  P256::Jacobian g = curve.ToJacobian(curve.generator());
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve.FromJacobian(curve.JacScalarMult(g, k)));
  }
}
BENCHMARK(BM_P256_BaseMult_Generic);

// The comb/windowed fixed-base path: 64 mixed additions, no doublings.
void BM_P256_BaseMult_Fixed(benchmark::State& state) {
  SecureRandom rng(ToBytes("bench-ec-fixed"));
  const P256& curve = P256::Get();
  U256 k = rng.RandomScalar(curve.order());
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve.BaseMult(k));
  }
}
BENCHMARK(BM_P256_BaseMult_Fixed);

// Fixed-base path on a caller-registered point (a shuffler public key).
void BM_P256_ScalarMult_Registered(benchmark::State& state) {
  SecureRandom rng(ToBytes("bench-ec-registered"));
  const P256& curve = P256::Get();
  EcPoint base = curve.BaseMult(rng.RandomScalar(curve.order()));
  curve.RegisterFixedBase(base);
  U256 k = rng.RandomScalar(curve.order());
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve.ScalarMult(base, k));
  }
}
BENCHMARK(BM_P256_ScalarMult_Registered);

// Fixed-base multiplication plus batch affine conversion: the amortized
// per-item cost of BatchBaseMult over 256-scalar batches.
void BM_P256_BatchBaseMult256(benchmark::State& state) {
  SecureRandom rng(ToBytes("bench-ec-batch"));
  const P256& curve = P256::Get();
  std::vector<U256> scalars;
  for (int i = 0; i < 256; ++i) {
    scalars.push_back(rng.RandomScalar(curve.order()));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve.BatchBaseMult(scalars));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_P256_BatchBaseMult256);

void BM_HybridSeal_64B(benchmark::State& state) {
  SecureRandom rng(ToBytes("bench-hybrid"));
  KeyPair recipient = KeyPair::Generate(rng);
  Bytes payload(64, 0x11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HybridSeal(recipient.public_key, payload, "ctx", rng));
  }
}
BENCHMARK(BM_HybridSeal_64B);

void BM_HybridOpen_64B(benchmark::State& state) {
  SecureRandom rng(ToBytes("bench-hybrid-open"));
  KeyPair recipient = KeyPair::Generate(rng);
  HybridBox box = HybridSeal(recipient.public_key, Bytes(64, 0x11), "ctx", rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HybridOpen(recipient, box, "ctx"));
  }
}
BENCHMARK(BM_HybridOpen_64B);

// The shuffler's per-report open cost, amortized over a 256-report batch:
// deserialize, batched ECDH (shared inversions), AEAD, view parse.
void BM_BatchOpenReports256(benchmark::State& state) {
  SecureRandom rng(ToBytes("bench-batch-open"));
  KeyPair shuffler = KeyPair::Generate(rng);
  KeyPair analyzer = KeyPair::Generate(rng);
  std::vector<CrowdPart> crowds(256);
  std::vector<Bytes> payloads(256);
  for (int i = 0; i < 256; ++i) {
    crowds[i].plain_hash = static_cast<uint64_t>(i % 7);
    payloads[i] = *PadPayload(Bytes(60, 0x22), 64);
  }
  std::vector<Bytes> reports =
      BatchSealReports(crowds, payloads, shuffler.public_key, analyzer.public_key, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BatchOpenReports(shuffler, reports));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_BatchOpenReports256);

// The §5.2 claim: "at a minimal computational cost to clients (less than
// 50 µs per encoding)" with OpenSSL on the paper's Xeon.
void BM_SecretShareEncode(benchmark::State& state) {
  SecureRandom rng(ToBytes("bench-ss"));
  SecretSharer sharer(20);
  Bytes message = ToBytes("a-vocab-word");
  for (auto _ : state) {
    benchmark::DoNotOptimize(sharer.Encode(message, rng));
  }
}
BENCHMARK(BM_SecretShareEncode);

void BM_SecretShareRecover20(benchmark::State& state) {
  SecureRandom rng(ToBytes("bench-ss-rec"));
  SecretSharer sharer(20);
  Bytes message = ToBytes("a-vocab-word");
  std::vector<SecretShare> shares;
  Bytes ciphertext;
  for (int i = 0; i < 20; ++i) {
    auto enc = sharer.Encode(message, rng);
    ciphertext = enc.ciphertext;
    shares.push_back(enc.share);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sharer.Recover(ciphertext, shares));
  }
}
BENCHMARK(BM_SecretShareRecover20);

void BM_HashToCurve(benchmark::State& state) {
  std::string input = "crowd-id-value";
  for (auto _ : state) {
    benchmark::DoNotOptimize(HashToCurve(input));
  }
}
BENCHMARK(BM_HashToCurve);

void BM_ElGamalEncrypt(benchmark::State& state) {
  SecureRandom rng(ToBytes("bench-eg"));
  KeyPair recipient = KeyPair::Generate(rng);
  EcPoint mu = HashToCurve(std::string("crowd"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ElGamalEncrypt(recipient.public_key, mu, rng));
  }
}
BENCHMARK(BM_ElGamalEncrypt);

void BM_ElGamalBlind(benchmark::State& state) {
  SecureRandom rng(ToBytes("bench-eg-blind"));
  KeyPair recipient = KeyPair::Generate(rng);
  ElGamalCiphertext ct = ElGamalEncrypt(recipient.public_key, HashToCurve(std::string("c")), rng);
  Secret<U256> alpha = rng.RandomSecretScalar(P256::Get().order());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ElGamalBlind(ct, alpha));
  }
}
BENCHMARK(BM_ElGamalBlind);

// One-inversion-per-chunk batch blinding — Shuffler 1's per-report cost.
void BM_ElGamalBlindBatch256(benchmark::State& state) {
  SecureRandom rng(ToBytes("bench-eg-blind-batch"));
  KeyPair recipient = KeyPair::Generate(rng);
  Secret<U256> alpha = rng.RandomSecretScalar(P256::Get().order());
  std::vector<ElGamalCiphertext> cts;
  for (int i = 0; i < 256; ++i) {
    cts.push_back(ElGamalEncrypt(recipient.public_key, HashToCurve(std::string("c")), rng));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ElGamalBlindBatch(cts, alpha));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_ElGamalBlindBatch256);

void BM_ElGamalRerandomize(benchmark::State& state) {
  SecureRandom rng(ToBytes("bench-eg-rr"));
  KeyPair recipient = KeyPair::Generate(rng);
  ElGamalCiphertext ct = ElGamalEncrypt(recipient.public_key, HashToCurve(std::string("c")), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ElGamalRerandomize(ct, recipient.public_key, rng));
  }
}
BENCHMARK(BM_ElGamalRerandomize);

// Fixed-base G and recipient tables plus batch affine conversion — the
// re-encryption cost the stash shuffle's distribution phase scales with.
void BM_ElGamalRerandomizeBatch256(benchmark::State& state) {
  SecureRandom rng(ToBytes("bench-eg-rr-batch"));
  KeyPair recipient = KeyPair::Generate(rng);
  P256::Get().RegisterFixedBase(recipient.public_key);  // long-lived shuffler key
  std::vector<ElGamalCiphertext> cts;
  for (int i = 0; i < 256; ++i) {
    cts.push_back(ElGamalEncrypt(recipient.public_key, HashToCurve(std::string("c")), rng));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ElGamalRerandomizeBatch(cts, recipient.public_key, rng));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_ElGamalRerandomizeBatch256);

void BM_ElGamalDecryptBatch256(benchmark::State& state) {
  SecureRandom rng(ToBytes("bench-eg-dec-batch"));
  KeyPair recipient = KeyPair::Generate(rng);
  std::vector<ElGamalCiphertext> cts;
  for (int i = 0; i < 256; ++i) {
    cts.push_back(ElGamalEncrypt(recipient.public_key, HashToCurve(std::string("c")), rng));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ElGamalDecryptBatch(recipient.private_key, cts));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_ElGamalDecryptBatch256);

void BM_EcdsaSign(benchmark::State& state) {
  SecureRandom rng(ToBytes("bench-ecdsa"));
  KeyPair signer = KeyPair::Generate(rng);
  Bytes message = ToBytes("quote payload");
  for (auto _ : state) {
    benchmark::DoNotOptimize(EcdsaSign(signer.private_key, message));
  }
}
BENCHMARK(BM_EcdsaSign);

void BM_EncodeFullReport(benchmark::State& state) {
  // One complete client report: pad, inner box, outer box (the per-client
  // cost in Table 3's Encoder column).
  SecureRandom rng(ToBytes("bench-report"));
  KeyPair shuffler = KeyPair::Generate(rng);
  KeyPair analyzer = KeyPair::Generate(rng);
  CrowdPart crowd;
  crowd.plain_hash = 1234;
  auto padded = PadPayload(Bytes(60, 0x22), 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SealReport(crowd, *padded, shuffler.public_key, analyzer.public_key, rng));
  }
}
BENCHMARK(BM_EncodeFullReport);

// Console output as usual, plus BENCH_crypto.json via bench/json_out.h.
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonCaptureReporter(BenchJsonWriter* writer) : writer_(writer) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) {
        continue;
      }
      double ns_per_op = run.GetAdjustedRealTime();  // default time unit: ns
      double ops_per_sec = ns_per_op > 0 ? 1e9 / ns_per_op : 0;
      uint64_t n = static_cast<uint64_t>(run.iterations);
      auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        // Batch benchmarks: report the amortized per-item figures.
        ops_per_sec = items->second.value;
        ns_per_op = ops_per_sec > 0 ? 1e9 / ops_per_sec : 0;
      }
      writer_->Add(run.benchmark_name(), n, ns_per_op, ops_per_sec);
    }
  }

 private:
  BenchJsonWriter* writer_;
};

}  // namespace
}  // namespace prochlo

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  prochlo::BenchJsonWriter writer("crypto");
  prochlo::JsonCaptureReporter reporter(&writer);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  writer.Write();
  return 0;
}

// Crypto microbenchmarks (google-benchmark): the primitive costs that drive
// the pipeline tables, plus the §5.2 claim that secret-share encoding costs
// the client "less than 50 µs per encoding" (with OpenSSL; our from-scratch
// field arithmetic is the constant to compare against).
#include <benchmark/benchmark.h>

#include "src/core/report.h"
#include "src/crypto/ecdsa.h"
#include "src/crypto/elgamal.h"
#include "src/crypto/hash_to_curve.h"
#include "src/crypto/secret_share.h"
#include "src/crypto/sha256.h"

namespace prochlo {
namespace {

void BM_Sha256_1KB(benchmark::State& state) {
  Bytes data(1024, 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1KB);

void BM_AesGcmSeal_318B(benchmark::State& state) {
  SecureRandom rng(ToBytes("bench"));
  AesGcm aead(rng.RandomBytes(16));
  Bytes plaintext(318, 0x55);
  GcmNonce nonce = rng.RandomNonce();
  for (auto _ : state) {
    benchmark::DoNotOptimize(aead.Seal(nonce, plaintext, {}));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 318);
}
BENCHMARK(BM_AesGcmSeal_318B);

void BM_P256_ScalarMult(benchmark::State& state) {
  SecureRandom rng(ToBytes("bench-ec"));
  const P256& curve = P256::Get();
  U256 k = rng.RandomScalar(curve.order());
  EcPoint p = curve.generator();
  for (auto _ : state) {
    p = curve.ScalarMult(p, k);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_P256_ScalarMult);

void BM_HybridSeal_64B(benchmark::State& state) {
  SecureRandom rng(ToBytes("bench-hybrid"));
  KeyPair recipient = KeyPair::Generate(rng);
  Bytes payload(64, 0x11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HybridSeal(recipient.public_key, payload, "ctx", rng));
  }
}
BENCHMARK(BM_HybridSeal_64B);

void BM_HybridOpen_64B(benchmark::State& state) {
  SecureRandom rng(ToBytes("bench-hybrid-open"));
  KeyPair recipient = KeyPair::Generate(rng);
  HybridBox box = HybridSeal(recipient.public_key, Bytes(64, 0x11), "ctx", rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HybridOpen(recipient, box, "ctx"));
  }
}
BENCHMARK(BM_HybridOpen_64B);

// The §5.2 claim: "at a minimal computational cost to clients (less than
// 50 µs per encoding)" with OpenSSL on the paper's Xeon.
void BM_SecretShareEncode(benchmark::State& state) {
  SecureRandom rng(ToBytes("bench-ss"));
  SecretSharer sharer(20);
  Bytes message = ToBytes("a-vocab-word");
  for (auto _ : state) {
    benchmark::DoNotOptimize(sharer.Encode(message, rng));
  }
}
BENCHMARK(BM_SecretShareEncode);

void BM_SecretShareRecover20(benchmark::State& state) {
  SecureRandom rng(ToBytes("bench-ss-rec"));
  SecretSharer sharer(20);
  Bytes message = ToBytes("a-vocab-word");
  std::vector<SecretShare> shares;
  Bytes ciphertext;
  for (int i = 0; i < 20; ++i) {
    auto enc = sharer.Encode(message, rng);
    ciphertext = enc.ciphertext;
    shares.push_back(enc.share);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sharer.Recover(ciphertext, shares));
  }
}
BENCHMARK(BM_SecretShareRecover20);

void BM_HashToCurve(benchmark::State& state) {
  std::string input = "crowd-id-value";
  for (auto _ : state) {
    benchmark::DoNotOptimize(HashToCurve(input));
  }
}
BENCHMARK(BM_HashToCurve);

void BM_ElGamalEncrypt(benchmark::State& state) {
  SecureRandom rng(ToBytes("bench-eg"));
  KeyPair recipient = KeyPair::Generate(rng);
  EcPoint mu = HashToCurve(std::string("crowd"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ElGamalEncrypt(recipient.public_key, mu, rng));
  }
}
BENCHMARK(BM_ElGamalEncrypt);

void BM_ElGamalBlind(benchmark::State& state) {
  SecureRandom rng(ToBytes("bench-eg-blind"));
  KeyPair recipient = KeyPair::Generate(rng);
  ElGamalCiphertext ct = ElGamalEncrypt(recipient.public_key, HashToCurve(std::string("c")), rng);
  U256 alpha = rng.RandomScalar(P256::Get().order());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ElGamalBlind(ct, alpha));
  }
}
BENCHMARK(BM_ElGamalBlind);

void BM_EcdsaSign(benchmark::State& state) {
  SecureRandom rng(ToBytes("bench-ecdsa"));
  KeyPair signer = KeyPair::Generate(rng);
  Bytes message = ToBytes("quote payload");
  for (auto _ : state) {
    benchmark::DoNotOptimize(EcdsaSign(signer.private_key, message));
  }
}
BENCHMARK(BM_EcdsaSign);

void BM_EncodeFullReport(benchmark::State& state) {
  // One complete client report: pad, inner box, outer box (the per-client
  // cost in Table 3's Encoder column).
  SecureRandom rng(ToBytes("bench-report"));
  KeyPair shuffler = KeyPair::Generate(rng);
  KeyPair analyzer = KeyPair::Generate(rng);
  CrowdPart crowd;
  crowd.plain_hash = 1234;
  auto padded = PadPayload(Bytes(60, 0x22), 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SealReport(crowd, *padded, shuffler.public_key, analyzer.public_key, rng));
  }
}
BENCHMARK(BM_EncodeFullReport);

}  // namespace
}  // namespace prochlo

BENCHMARK_MAIN();

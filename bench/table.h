// Minimal fixed-width table printer shared by the paper-table benches.
#ifndef PROCHLO_BENCH_TABLE_H_
#define PROCHLO_BENCH_TABLE_H_

#include <cstdio>
#include <string>
#include <vector>

namespace prochlo {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {
    widths_.resize(headers_.size());
    for (size_t i = 0; i < headers_.size(); ++i) {
      widths_[i] = headers_[i].size();
    }
  }

  void AddRow(std::vector<std::string> cells) {
    cells.resize(headers_.size());
    for (size_t i = 0; i < cells.size(); ++i) {
      widths_[i] = std::max(widths_[i], cells[i].size());
    }
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    PrintRow(headers_);
    std::string rule;
    for (size_t i = 0; i < headers_.size(); ++i) {
      rule += std::string(widths_[i] + 2, '-');
    }
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) {
      PrintRow(row);
    }
  }

 private:
  void PrintRow(const std::vector<std::string>& cells) const {
    for (size_t i = 0; i < cells.size(); ++i) {
      std::printf("%-*s  ", static_cast<int>(widths_[i]), cells[i].c_str());
    }
    std::printf("\n");
  }

  std::vector<std::string> headers_;
  std::vector<size_t> widths_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string FormatCount(uint64_t n) {
  if (n >= 1'000'000 && n % 1'000'000 == 0) {
    return std::to_string(n / 1'000'000) + "M";
  }
  if (n >= 1'000 && n % 1'000 == 0) {
    return std::to_string(n / 1'000) + "K";
  }
  return std::to_string(n);
}

inline std::string FormatDouble(double v, int decimals = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

}  // namespace prochlo

#endif  // PROCHLO_BENCH_TABLE_H_

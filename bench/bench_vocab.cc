// Regenerates Figure 5 (paper §5.2): unique words recovered from samples of
// 10K..10M Vocab words under each arrangement:
//
//   Ground truth      — distinct words in the sample, no privacy;
//   NoCrowd           — secret-share recovery at t=20, no crowd thresholding
//                       (no DP; slightly better utility);
//   *-Crowd           — crowd thresholding with the paper's randomized policy
//                       (T=20, D=10, sigma=2 => (2.25, 1e-6)-DP); identical
//                       utility for Crowd / Secret-Crowd / Blinded-Crowd,
//                       which differ only in attack-model protection;
//   Partition         — RAPPOR with reports partitioned by a few-bit word
//                       hash (4..256 partitions across the decades, §2.2);
//   RAPPOR            — plain local-DP baseline at epsilon = 2.
//
// ESA lines run through the crypto-free simulator (utility-equivalent to
// the real pipeline; proven in tests/integration_test.cc).  RAPPOR lines
// run the actual encoder/decoder.  The corpus is Zipf(1.10) over 100K words,
// calibrated so the ground-truth line tracks the paper's.
#include <cstdio>
#include <cstdlib>

#include "bench/table.h"
#include "src/analysis/esa_sim.h"
#include "src/dp/mechanisms.h"
#include "src/dp/rappor.h"
#include "src/workload/vocab.h"

namespace prochlo {
namespace {

// Inverse normal CDF by bisection (plenty for a z-threshold).
double InverseNormalCdf(double p) {
  double lo = -10;
  double hi = 10;
  for (int i = 0; i < 100; ++i) {
    double mid = 0.5 * (lo + hi);
    (NormalCdf(mid) < p ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

uint64_t RunRappor(const std::vector<uint64_t>& sample, uint64_t vocabulary_size,
                   uint32_t num_partitions, Rng& rng) {
  RapporParams params = RapporParams::ForEpsilon(2.0);
  std::vector<RapporDecoder> decoders;
  decoders.reserve(num_partitions);
  for (uint32_t p = 0; p < num_partitions; ++p) {
    decoders.emplace_back(params);
  }
  RapporEncoder encoder(params);

  auto partition_of = [&](uint64_t rank) {
    return static_cast<uint32_t>((rank * 0x9e3779b97f4a7c15ULL >> 32) % num_partitions);
  };

  uint64_t client_id = 0;
  for (uint64_t rank : sample) {
    decoders[partition_of(rank)].Accumulate(
        encoder.Encode(VocabWorkload::WordName(rank), client_id++, rng));
  }

  // Bonferroni-corrected detection threshold over the whole dictionary.
  double z = InverseNormalCdf(1.0 - 0.05 / static_cast<double>(vocabulary_size));

  // Test each dictionary word in its own partition.
  std::vector<std::vector<std::string>> candidates(num_partitions);
  for (uint64_t rank = 0; rank < vocabulary_size; ++rank) {
    candidates[partition_of(rank)].push_back(VocabWorkload::WordName(rank));
  }
  uint64_t recovered = 0;
  for (uint32_t p = 0; p < num_partitions; ++p) {
    recovered += decoders[p].DecodeCandidates(candidates[p], z).size();
  }
  return recovered;
}

void Run() {
  uint64_t max_n = 10'000'000;
  if (const char* env = std::getenv("PROCHLO_VOCAB_MAX_N")) {
    max_n = std::strtoull(env, nullptr, 10);
  }

  std::printf("=== Figure 5: unique Vocab words recovered (Zipf corpus, 100K-word dict) ===\n\n");

  VocabConfig config;
  config.vocabulary_size = 100'000;
  config.zipf_exponent = 1.10;
  VocabWorkload vocab(config);

  constexpr uint64_t kThreshold = 20;  // both crowd threshold T and share t

  TablePrinter table({"Sample", "GroundTruth", "NoCrowd", "*-Crowd", "Partition", "RAPPOR",
                      "[paper GT]", "[paper *-C]", "[paper RAPPOR]"});
  struct PaperRow {
    uint64_t gt, star, rappor;
  };
  const std::map<uint64_t, PaperRow> paper = {{10'000, {4062, 32, 2}},
                                              {100'000, {18665, 371, 15}},
                                              {1'000'000, {57500, 3730, 122}},
                                              {10'000'000, {91260, 21972, 240}}};

  uint32_t partitions = 4;
  for (uint64_t n : {10'000ull, 100'000ull, 1'000'000ull, 10'000'000ull}) {
    if (n > max_n) {
      break;
    }
    Rng rng(2024 + n);
    auto sample = vocab.SampleCorpus(n, rng);

    uint64_t ground_truth = VocabWorkload::CountUnique(sample);

    // Plain histogram once; the ESA lines derive from it.
    std::vector<SimReport> reports;
    reports.reserve(sample.size());
    for (uint64_t rank : sample) {
      reports.push_back({rank, rank});  // crowd ID = hash of the word
    }

    // NoCrowd: no thresholding; recovery gated only by t=20 shares.
    ShufflerConfig none;
    none.threshold_mode = ThresholdMode::kNone;
    Rng noise1(1);
    auto no_crowd = SimulateShuffle(reports, none, noise1);
    uint64_t no_crowd_recovered = CountRecoverableValues(no_crowd.histogram, kThreshold);

    // *-Crowd: the paper's randomized thresholding.
    ShufflerConfig randomized;
    randomized.threshold_mode = ThresholdMode::kRandomized;
    randomized.policy = ThresholdPolicy{20, 10, 2};
    Rng noise2(2);
    auto crowd = SimulateShuffle(reports, randomized, noise2);
    uint64_t crowd_recovered = CountRecoverableValues(crowd.histogram, kThreshold);

    Rng rappor_rng(3);
    uint64_t rappor_recovered = RunRappor(sample, config.vocabulary_size, 1, rappor_rng);
    Rng partition_rng(4);
    uint64_t partition_recovered =
        RunRappor(sample, config.vocabulary_size, partitions, partition_rng);

    auto paper_row = paper.at(n);
    table.AddRow({FormatCount(n), std::to_string(ground_truth),
                  std::to_string(no_crowd_recovered), std::to_string(crowd_recovered),
                  std::to_string(partition_recovered), std::to_string(rappor_recovered),
                  std::to_string(paper_row.gt), std::to_string(paper_row.star),
                  std::to_string(paper_row.rappor)});
    partitions *= 4;  // 4, 16, 64, 256 across the decades (paper: 4..256)
  }
  table.Print();

  std::printf(
      "\nShape checks vs the paper: *-Crowd recovers a large fraction of NoCrowd (noisy\n"
      "thresholding costs little); both dwarf RAPPOR (<5%% of PROCHLO's utility); the\n"
      "Partition variant improves RAPPOR only by a small factor (1.1-3.5x in the paper);\n"
      "and every line grows with the sample size.  (*-Crowd covers Crowd, Secret-Crowd\n"
      "and Blinded-Crowd, whose utility is identical; DP: (2.25, 1e-6) per §3.5.)\n");
}

}  // namespace
}  // namespace prochlo

int main() {
  prochlo::Run();
  return 0;
}

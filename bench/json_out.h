// Machine-readable bench output: each bench writes BENCH_<name>.json next to
// its working directory so the perf trajectory can be tracked across PRs
// (docs/perf.md records the headline numbers).
//
// Schema:
//   { "bench": "<name>",
//     "results": [ {"op": "...", "n": <count>, "ns_per_op": <double>,
//                   "ops_per_sec": <double>,
//                   "groups": <count>, "workers": <count>}, ... ] }
//
// Every row carries its topology: how many shard groups served the stage
// (1 = single-frontend) and how many ingest workers each ran (0 =
// synchronous, no worker threads), so cross-PR trend lines never compare
// numbers measured on different shapes.
#ifndef PROCHLO_BENCH_JSON_OUT_H_
#define PROCHLO_BENCH_JSON_OUT_H_

#include <cstdio>
#include <string>
#include <vector>

namespace prochlo {

class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(std::string bench_name) : bench_name_(std::move(bench_name)) {}

  void Add(const std::string& op, uint64_t n, double ns_per_op, double ops_per_sec,
           uint64_t groups = 1, uint64_t workers = 0) {
    results_.push_back(Entry{op, n, ns_per_op, ops_per_sec, groups, workers});
  }

  // Writes BENCH_<name>.json; returns false (and prints a warning) on I/O
  // failure so benches still exit cleanly in read-only environments.
  bool Write() const {
    std::string path = "BENCH_" + bench_name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"results\": [\n", bench_name_.c_str());
    for (size_t i = 0; i < results_.size(); ++i) {
      const Entry& e = results_[i];
      std::fprintf(f,
                   "    {\"op\": \"%s\", \"n\": %llu, \"ns_per_op\": %.1f, "
                   "\"ops_per_sec\": %.1f, \"groups\": %llu, \"workers\": %llu}%s\n",
                   e.op.c_str(), static_cast<unsigned long long>(e.n), e.ns_per_op,
                   e.ops_per_sec, static_cast<unsigned long long>(e.groups),
                   static_cast<unsigned long long>(e.workers),
                   i + 1 < results_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu results)\n", path.c_str(), results_.size());
    return true;
  }

 private:
  struct Entry {
    std::string op;
    uint64_t n;
    double ns_per_op;
    double ops_per_sec;
    uint64_t groups;
    uint64_t workers;
  };

  std::string bench_name_;
  std::vector<Entry> results_;
};

}  // namespace prochlo

#endif  // PROCHLO_BENCH_JSON_OUT_H_

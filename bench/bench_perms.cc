// Regenerates Table 4 (paper §5.3): Perms — number of Web pages recovered
// per permission feature using (a) a naive threshold of 100 on
// ⟨page, feature⟩ tuples and (b) a noisy crowd threshold (sigma = 4) per
// user action, giving (1.2, 1e-7)-DP.  Each action bitmap bit is flipped
// with probability 1e-4 for plausible deniability, as in the paper.
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

#include "bench/table.h"
#include "src/dp/threshold_dp.h"
#include "src/workload/perms.h"

namespace prochlo {
namespace {

void Run() {
  uint64_t num_events = 20'000'000;
  if (const char* env = std::getenv("PROCHLO_PERMS_EVENTS")) {
    num_events = std::strtoull(env, nullptr, 10);
  }

  std::printf("=== Table 4: Perms — pages recovered per feature/action (%luM events) ===\n\n",
              num_events / 1'000'000);

  PermsConfig config;
  PermsWorkload perms(config);
  Rng rng(11);
  auto events = perms.SampleDataset(num_events, rng);

  // Encoder-side plausible deniability: flip each action bit w.p. 1e-4.
  constexpr double kBitFlip = 1e-4;
  for (auto& event : events) {
    for (int a = 0; a < kNumPermActions; ++a) {
      if (rng.NextBool(kBitFlip)) {
        event.action_bitmap ^= static_cast<uint8_t>(1u << a);
      }
    }
  }

  constexpr double kThreshold = 100;
  constexpr double kDropMean = 10;
  constexpr double kDropSigma = 4;

  // Counts per (page, feature) and per (page, feature, action).
  auto pf_key = [](uint32_t page, uint8_t feature) {
    return (static_cast<uint64_t>(page) << 8) | feature;
  };
  std::unordered_map<uint64_t, uint64_t> pf_counts;
  std::unordered_map<uint64_t, uint64_t> pfa_counts;
  for (const auto& event : events) {
    pf_counts[pf_key(event.page, event.feature)]++;
    for (int a = 0; a < kNumPermActions; ++a) {
      if (event.action_bitmap & (1u << a)) {
        pfa_counts[(pf_key(event.page, event.feature) << 3) | static_cast<uint64_t>(a)]++;
      }
    }
  }

  // Naive thresholding on (page, feature).
  std::array<uint64_t, kNumPermFeatures> naive = {0, 0, 0};
  for (const auto& [key, count] : pf_counts) {
    if (static_cast<double>(count) >= kThreshold) {
      naive[key & 0xff]++;
    }
  }

  // Noisy crowd thresholding per (page, feature, action).
  Rng noise_rng(12);
  std::array<std::array<uint64_t, kNumPermActions>, kNumPermFeatures> recovered = {};
  for (const auto& [key, count] : pfa_counts) {
    uint8_t action = key & 0x7;
    uint8_t feature = (key >> 3) & 0xff;
    int64_t d = noise_rng.NextRoundedTruncatedGaussian(kDropMean, kDropSigma);
    if (static_cast<double>(count) - static_cast<double>(d) >= kThreshold) {
      recovered[feature][action]++;
    }
  }

  // Paper's Table 4 for reference.
  const uint64_t paper[5][kNumPermFeatures] = {
      {6'610, 12'200, 620},  // naive
      {5'850, 8'870, 440},   // granted
      {5'780, 8'930, 430},   // denied
      {5'860, 9'465, 440},   // dismissed
      {5'850, 11'020, 530},  // ignored
  };

  TablePrinter table({"", "Geolocation", "Notification", "Audio", "[paper Geo]", "[paper Notif]",
                      "[paper Audio]"});
  table.AddRow({"Naive Thresh.", std::to_string(naive[0]), std::to_string(naive[1]),
                std::to_string(naive[2]), std::to_string(paper[0][0]),
                std::to_string(paper[0][1]), std::to_string(paper[0][2])});
  for (int a = 0; a < kNumPermActions; ++a) {
    table.AddRow({kPermActionNames[a], std::to_string(recovered[0][a]),
                  std::to_string(recovered[1][a]), std::to_string(recovered[2][a]),
                  std::to_string(paper[a + 1][0]), std::to_string(paper[a + 1][1]),
                  std::to_string(paper[a + 1][2])});
  }
  table.Print();

  ThresholdPrivacy privacy = AnalyzeThresholdPolicy({kThreshold, kDropMean, kDropSigma}, 1e-7);
  std::printf(
      "\nPrivacy: noisy threshold sigma=4 => (%.2f, 1e-7)-DP (paper: (1.2, 1e-7)); bitmap\n"
      "bit-flips at 1e-4 add plausible deniability for user actions.  Shape checks:\n"
      "Notification >> Geolocation >> Audio in every row; per-action rows land below the\n"
      "naive row (splitting by action thins each crowd); all rows are in the thousands\n"
      "for the two big features.  (RAPPOR on this task recovered only a few dozen pages\n"
      "in total, per §5.3 — orders of magnitude below every PROCHLO row.)\n",
      privacy.epsilon);
}

}  // namespace
}  // namespace prochlo

int main() {
  prochlo::Run();
  return 0;
}

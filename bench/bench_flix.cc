// Regenerates Table 5 (paper §5.5): Flix — collaborative-filtering RMSE with
// and without PROCHLO collection, across dataset sizes.
//
// No-privacy model: item-item covariance built from every four-tuple of every
// user's ratings.  PROCHLO model: per-user tuples are capped at 500, 10% of
// movie identifiers are randomized (2.2-DP for the rated-movie set), and each
// tuple must clear the randomized crowd threshold on *both* of its
// (movie, rating) halves (threshold 20; 5 for sparse configurations, applying
// the paper's own footnote adaptation — at 10x-scaled user counts the 17770-
// movie row is as sparse as the paper's 200-movie row).
//
// The paper's result is the *gap*: RMSE with PROCHLO is within a few parts
// per thousand of the no-privacy RMSE.  Users are scaled ~10x down from the
// Netflix-sized config (set PROCHLO_FLIX_FULL=1 for the full 480K/17770 row).
#include <cstdio>
#include <cstdlib>

#include "bench/table.h"
#include "src/analysis/covariance.h"
#include "src/workload/flix.h"

namespace prochlo {
namespace {

struct Scenario {
  uint32_t num_movies;
  uint32_t num_users;
  double threshold;
  const char* paper_no_privacy;
  const char* paper_prochlo;
};

void Run() {
  std::printf("=== Table 5: Flix collaborative-filtering RMSE (lower is better) ===\n\n");

  bool full = std::getenv("PROCHLO_FLIX_FULL") != nullptr;
  const Scenario scenarios[] = {
      {200, full ? 90'000u : 9'000u, 5, "0.9579", "0.9595"},
      {2'000, full ? 353'000u : 35'000u, 20, "0.9414", "0.9420"},
      {17'770, full ? 480'000u : 48'000u, full ? 20.0 : 5.0, "0.9222", "0.9242"},
  };

  TablePrinter table({"#Movies", "#Users", "#Tuples", "RMSE no-priv", "RMSE PROCHLO", "Gap",
                      "[paper no-priv]", "[paper PROCHLO]"});
  for (const auto& scenario : scenarios) {
    FlixConfig config;
    config.num_movies = scenario.num_movies;
    config.num_users = scenario.num_users;
    config.mean_ratings_per_user = scenario.num_movies >= 2'000 ? 35 : 20;
    FlixWorkload workload(config);
    Rng rng(31 + scenario.num_movies);
    FlixDataset dataset = workload.Generate(rng);

    FlixEncodingConfig encoding;
    encoding.tuple_cap = 500;
    encoding.movie_randomization = 0.10;
    encoding.num_movies = scenario.num_movies;

    FlixEncodingConfig no_privacy_encoding;
    no_privacy_encoding.tuple_cap = static_cast<size_t>(-1);
    no_privacy_encoding.movie_randomization = 0;
    no_privacy_encoding.num_movies = scenario.num_movies;

    // Collect tuples under both regimes.
    std::vector<FourTuple> exact_tuples;
    std::vector<FourTuple> private_tuples;
    Rng client_rng(77);
    for (const auto& user_ratings : dataset.train_by_user) {
      auto exact = EncodeUserRatings(user_ratings, no_privacy_encoding, client_rng);
      exact_tuples.insert(exact_tuples.end(), exact.begin(), exact.end());
      auto coded = EncodeUserRatings(user_ratings, encoding, client_rng);
      private_tuples.insert(private_tuples.end(), coded.begin(), coded.end());
    }
    Rng noise_rng(78);
    private_tuples =
        ThresholdTuples(std::move(private_tuples), scenario.threshold, 10, 2, noise_rng);

    CovarianceModel exact_model(scenario.num_movies);
    exact_model.AddTuples(exact_tuples);
    exact_model.Finalize();
    CovarianceModel private_model(scenario.num_movies);
    private_model.AddTuples(private_tuples);
    private_model.Finalize();

    double exact_rmse = exact_model.Rmse(dataset.test, dataset.train_by_user);
    double private_rmse = private_model.Rmse(dataset.test, dataset.train_by_user);

    table.AddRow({std::to_string(scenario.num_movies), FormatCount(scenario.num_users),
                  FormatCount(private_tuples.size()), FormatDouble(exact_rmse, 4),
                  FormatDouble(private_rmse, 4), FormatDouble(private_rmse - exact_rmse, 4),
                  scenario.paper_no_privacy, scenario.paper_prochlo});
  }
  table.Print();

  std::printf(
      "\nShape check (the paper's result): PROCHLO collection — capped sampling, 10%%\n"
      "movie randomization, two-crowd thresholding — costs only a few parts-per-thousand\n"
      "of RMSE vs the no-privacy model on every dataset size (paper: +0.0016/+0.0006/\n"
      "+0.0020).  Absolute RMSE differs because the ratings are synthetic (DESIGN.md).\n");
}

}  // namespace
}  // namespace prochlo

int main() {
  prochlo::Run();
  return 0;
}

// Regenerates the §5.4 Suggest result: next-view prediction from anonymous
// m-tuples.
//
// Paper claims to reproduce: a model trained only on shuffled, disjoint
// 3-tuples (i) predicts the next view correctly "more than 1 out of 8 times"
// and (ii) reaches "around 90% of the accuracy of a model trained without
// privacy" (full longitudinal histories).  Includes the fragment-size
// ablation (m = 2..5) and an MLP-vs-ngram cross-check at small scale.
#include <cstdio>
#include <cstdlib>
#include <span>

#include "bench/table.h"
#include "src/analysis/mlp.h"
#include "src/analysis/sequence.h"
#include "src/core/fragment.h"
#include "src/workload/suggest.h"

namespace prochlo {
namespace {

void Run() {
  uint64_t num_train_users = 100'000;
  if (const char* env = std::getenv("PROCHLO_SUGGEST_USERS")) {
    num_train_users = std::strtoull(env, nullptr, 10);
  }

  std::printf("=== §5.4 Suggest: next-view accuracy from anonymous m-tuples ===\n\n");

  SuggestConfig config;
  config.num_videos = 5'000;
  SuggestWorkload workload(config);
  Rng rng(41);
  auto train = workload.SampleUsers(num_train_users, rng);
  auto test = workload.SampleUsers(num_train_users / 20, rng);

  // No-privacy reference: sliding windows over full histories.
  NGramModel full_model(3);
  for (const auto& history : train) {
    full_model.AddHistorySlidingWindows(history);
  }
  double full_accuracy = full_model.EvaluateTopOne(test);

  TablePrinter table({"Model", "Top-1 accuracy", "vs no-privacy", "Contexts"});
  table.AddRow({"full history (no privacy)", FormatDouble(full_accuracy, 4), "100.0%",
                std::to_string(full_model.num_contexts())});

  double tuple3_accuracy = 0;
  for (uint32_t m : {2u, 3u, 4u, 5u}) {
    NGramModel tuple_model(m);
    for (const auto& history : train) {
      for (const auto& tuple : DisjointTuples(history, m)) {
        tuple_model.AddTuple(tuple);
      }
    }
    double accuracy = tuple_model.EvaluateTopOne(test);
    if (m == 3) {
      tuple3_accuracy = accuracy;
    }
    table.AddRow({"disjoint " + std::to_string(m) + "-tuples", FormatDouble(accuracy, 4),
                  FormatDouble(100.0 * accuracy / full_accuracy, 1) + "%",
                  std::to_string(tuple_model.num_contexts())});
  }
  table.Print();

  bool one_in_eight = tuple3_accuracy > 1.0 / 8.0;
  bool ninety_percent = tuple3_accuracy >= 0.8 * full_accuracy;
  std::printf(
      "\nPaper claims at m=3: accuracy > 1/8 = 0.125 -> %s (%.4f); ~90%% of the\n"
      "no-privacy model -> %s (%.1f%%).  Privacy: only anonymous, disjoint 3-tuples of\n"
      "popular videos ever leave the client; the shuffler prevents cross-tuple linking.\n",
      one_in_eight ? "HOLDS" : "FAILS", tuple3_accuracy, ninety_percent ? "HOLDS" : "FAILS",
      100.0 * tuple3_accuracy / full_accuracy);

  // ---- MLP cross-check at small scale (the paper's model is a neural net).
  std::printf("\n--- MLP cross-check (300 videos, tuple-trained, small scale) ---\n\n");
  SuggestConfig small;
  small.num_videos = 300;
  SuggestWorkload small_workload(small);
  Rng small_rng(42);
  auto small_train = small_workload.SampleUsers(3'000, small_rng);
  auto small_test = small_workload.SampleUsers(300, small_rng);

  MlpSequenceModel mlp(small.num_videos, /*context_length=*/2, /*hidden=*/48, /*seed=*/7);
  NGramModel ngram(3);
  for (int epoch = 0; epoch < 2; ++epoch) {
    for (const auto& history : small_train) {
      for (const auto& tuple : DisjointTuples(history, 3)) {
        mlp.TrainTuple(tuple, 0.03f);
        if (epoch == 0) {
          ngram.AddTuple(tuple);
        }
      }
    }
  }
  double mlp_accuracy = mlp.EvaluateTopOne(small_test);
  double ngram_accuracy = ngram.EvaluateTopOne(small_test);
  std::printf("MLP top-1: %.4f   n-gram top-1: %.4f   (both trained on the same disjoint\n"
              "3-tuples; the count model is the large-scale stand-in for the paper's DNN)\n",
              mlp_accuracy, ngram_accuracy);
}

}  // namespace
}  // namespace prochlo

int main() {
  prochlo::Run();
  return 0;
}

// Regenerates Table 2 (paper §5.1): Stash Shuffle execution — per-phase and
// total time plus peak private SGX memory — across input sizes, now also
// across worker-thread counts (the paper notes distribution parallelizes
// well; this bench quantifies it on the simulated enclave).
//
// The paper measures 10M-200M 318-byte records on real SGX hardware with
// OpenSSL (738 s to 4.1 h single-threaded).  This reproduction runs the same
// algorithm on the simulated enclave with from-scratch crypto at scaled-down
// N (set PROCHLO_STASH_MAX_N to raise the cap; PROCHLO_STASH_THREADS to a
// comma list of worker counts, 0 = sequential) and reports measured times,
// the exact paper-matching item counts, and the per-item extrapolation.
// The *shape* to check: Distribution dominates (public-key + AEAD work),
// Compression is a small fraction, and private memory stays tens of MB.
// Results are also written to BENCH_stash_shuffle.json.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/json_out.h"
#include "bench/table.h"
#include "src/core/report.h"
#include "src/shuffle/stash_shuffle.h"
#include "src/util/thread_pool.h"

namespace prochlo {
namespace {

std::vector<size_t> ParseThreadList(const char* env) {
  std::vector<size_t> threads;
  std::string spec = env != nullptr ? env : "0,4";
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    threads.push_back(std::strtoull(spec.substr(pos, comma - pos).c_str(), nullptr, 10));
    if (comma == std::string::npos) {
      break;
    }
    pos = comma + 1;
  }
  return threads;
}

void Run() {
  std::printf("=== Table 2: Stash Shuffle execution (scaled; 64B data + 8B crowd ID) ===\n\n");

  uint64_t max_n = 100'000;
  if (const char* env = std::getenv("PROCHLO_STASH_MAX_N")) {
    max_n = std::strtoull(env, nullptr, 10);
  }
  std::vector<size_t> thread_counts = ParseThreadList(std::getenv("PROCHLO_STASH_THREADS"));

  SecureRandom rng(ToBytes("bench-stash"));
  IntelRootAuthority intel(rng);
  auto platform = intel.ProvisionPlatform(rng);

  // Doubly-encrypted records, as in the paper's measurement: the shuffle
  // strips the outer layer on entry.
  KeyPair shuffler_keys = KeyPair::Generate(rng);
  KeyPair analyzer_keys = KeyPair::Generate(rng);

  BenchJsonWriter json("stash_shuffle");
  TablePrinter table({"N", "Threads", "Distribution", "Compression", "Total", "SGX Mem",
                      "Overhead", "us/item"});
  for (uint64_t n : {10'000ull, 50'000ull, 100'000ull, 200'000ull}) {
    if (n > max_n) {
      break;
    }
    std::vector<Bytes> reports;
    reports.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      CrowdPart crowd;
      crowd.plain_hash = i % 997;
      Bytes payload(60, static_cast<uint8_t>(i));
      auto padded = PadPayload(payload, 64);
      reports.push_back(SealReport(crowd, *padded, shuffler_keys.public_key,
                                   analyzer_keys.public_key, rng));
    }

    for (size_t num_threads : thread_counts) {
      std::unique_ptr<ThreadPool> pool;
      if (num_threads > 0) {
        pool = std::make_unique<ThreadPool>(num_threads);
      }
      Enclave enclave(EnclaveConfig{}, platform, rng);
      StashShuffler::Options options;
      options.open_outer = [&](const Bytes& record) -> std::optional<Bytes> {
        auto view = OpenReport(shuffler_keys, record);
        if (!view.has_value()) {
          return std::nullopt;
        }
        return view->Serialize();
      };
      options.pool = pool.get();
      StashShuffler shuffler(enclave, std::move(options));
      auto result = ShuffleWithRetries(shuffler, reports, rng, 5);
      if (!result.ok()) {
        table.AddRow({FormatCount(n), std::to_string(num_threads),
                      "FAILED: " + result.error().message});
        continue;
      }
      const auto& m = shuffler.metrics();
      double total = m.distribution_seconds + m.compression_seconds;
      table.AddRow({FormatCount(n), std::to_string(num_threads),
                    FormatDouble(m.distribution_seconds, 1) + " s",
                    FormatDouble(m.compression_seconds, 1) + " s", FormatDouble(total, 1) + " s",
                    FormatDouble(static_cast<double>(m.peak_private_bytes) / (1024.0 * 1024.0),
                                 1) +
                        " MB",
                    FormatDouble(m.OverheadFactor(n), 2) + "x",
                    FormatDouble(1e6 * total / static_cast<double>(n), 1)});
      json.Add("stash_shuffle/threads=" + std::to_string(num_threads), n,
               1e9 * total / static_cast<double>(n), static_cast<double>(n) / total);
    }
  }
  table.Print();
  json.Write();

  std::printf(
      "\nPaper (real SGX + OpenSSL, single-threaded): 10M -> 713+26 s, 22 MB; 50M -> 1.0 h,\n"
      "52 MB; 100M -> 2.1 h, 78 MB; 200M -> 4.1 h, 69 MB.  Shape checks: Distribution\n"
      "dominates (it pays the public-key outer-layer ECDH), Compression is only symmetric\n"
      "crypto, memory is far below the 92 MB budget, and time scales linearly in N.\n"
      "Threaded rows fork their randomness per item group, so every thread count emits\n"
      "the same permutation; wall-clock gains require more than one hardware core.\n");
}

}  // namespace
}  // namespace prochlo

int main() {
  prochlo::Run();
  return 0;
}

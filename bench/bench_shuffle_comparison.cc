// Regenerates the §4.1.3 oblivious-shuffling comparison: SGX-processed data
// relative to the dataset size for Batcher's sort, ColumnSort, cascade-mix
// networks, and the Stash Shuffle, at the paper's problem sizes (318-byte
// records, 92 MB enclave private memory).
//
// Also runs all four *implementations* empirically at a small N and reports
// their measured item-processing overheads, confirming the analytic models'
// ordering on real executions.
#include <cstdio>

#include "bench/table.h"
#include "src/shuffle/batcher.h"
#include "src/shuffle/cascade_mix.h"
#include "src/shuffle/columnsort.h"
#include "src/shuffle/cost_model.h"
#include "src/shuffle/melbourne.h"
#include "src/shuffle/stash_shuffle.h"

namespace prochlo {
namespace {

constexpr size_t kPrivateMemory = 92ull * 1024 * 1024;
constexpr size_t kItemBytes = 318;

void AnalyticTable() {
  std::printf("=== §4.1.3: analytic SGX-processing overheads (318-byte records) ===\n\n");
  TablePrinter table(
      {"N", "Batcher", "ColumnSort", "Melbourne", "CascadeMix(2^-64)", "StashShuffle"});
  for (uint64_t n : {10'000'000ull, 50'000'000ull, 100'000'000ull, 200'000'000ull}) {
    auto fmt = [](const ShuffleCost& cost) {
      return cost.overhead_factor.has_value() ? FormatDouble(*cost.overhead_factor, 2) + "x"
                                              : "- (" + cost.note + ")";
    };
    table.AddRow({FormatCount(n), fmt(BatcherCost(n, kItemBytes, kPrivateMemory)),
                  fmt(ColumnSortCost(n, kItemBytes, kPrivateMemory)),
                  fmt(MelbourneCost(n, kItemBytes, kPrivateMemory)),
                  fmt(CascadeMixCost(n, kItemBytes, kPrivateMemory)),
                  fmt(StashShuffleCost(n, kItemBytes, kPrivateMemory))});
  }
  table.Print();
  std::printf("\nPaper's quoted values: Batcher 49x/100x (10M/100M), ColumnSort 8x with a\n"
              "~118M-record cap, cascade mixes 114x/87x, Stash Shuffle 3.3-3.7x.\n");
}

void EmpiricalTable() {
  std::printf("\n=== Empirical runs of the four implementations (N=8192, 64-byte items) ===\n\n");
  constexpr size_t kN = 8192;
  SecureRandom rng(ToBytes("shuffle-comparison"));
  std::vector<Bytes> input;
  input.reserve(kN);
  for (size_t i = 0; i < kN; ++i) {
    Bytes item(64, 0);
    for (int b = 0; b < 8; ++b) {
      item[b] = static_cast<uint8_t>(i >> (8 * b));
    }
    input.push_back(std::move(item));
  }

  TablePrinter table({"Algorithm", "Items processed", "Overhead", "Rounds", "Dummies"});
  auto run = [&](ObliviousShuffler& shuffler) {
    auto result = ShuffleWithRetries(shuffler, input, rng, 20);
    if (!result.ok()) {
      table.AddRow({shuffler.name(), "FAILED: " + result.error().message, "", "", ""});
      return;
    }
    const auto& m = shuffler.metrics();
    table.AddRow({shuffler.name(), std::to_string(m.items_processed),
                  FormatDouble(m.OverheadFactor(kN), 2) + "x", std::to_string(m.rounds),
                  std::to_string(m.dummy_items)});
  };

  IntelRootAuthority intel(rng);
  auto platform = intel.ProvisionPlatform(rng);
  Enclave enclave(EnclaveConfig{}, platform, rng);
  StashShuffler stash(enclave, StashShuffler::Options{});
  run(stash);

  BatcherShuffler batcher;
  run(batcher);

  ColumnSortShuffler columnsort(ColumnSortShuffler::Options{8, 0});
  run(columnsort);

  MelbourneShuffler melbourne(enclave, MelbourneShuffler::Options{16, 4.0});
  run(melbourne);

  // Cascade mix tuned for a comparable (weaker!) mixing level: the round
  // count needed for 2^-64 security at this scale would dwarf the table.
  CascadeMixShuffler cascade(CascadeMixShuffler::Options{16, 12, 1.6});
  run(cascade);
  table.Print();
  std::printf("\n(The Batcher run is the element-level network, so its overhead reflects\n"
              "log^2 N rather than the bucketed log^2(N/b) of the analytic table.)\n");
}

}  // namespace
}  // namespace prochlo

int main() {
  prochlo::AnalyticTable();
  prochlo::EmpiricalTable();
  return 0;
}

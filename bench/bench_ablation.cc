// Ablation benches for the design choices DESIGN.md calls out:
//
//   1. chunk cap C vs failure rate and overhead — the stash is the paper's
//      key trick: too small a C without a stash fails constantly, a stash
//      absorbs the balls-in-bins variance at tiny overhead;
//   2. stash size S vs failure rate at fixed C;
//   3. compression window W vs failure rate;
//   4. thresholding noise sigma vs utility (reports surviving) and epsilon —
//      the shuffler's privacy/utility dial;
//   5. secret-share threshold t vs values recoverable at the analyzer.
#include <cmath>
#include <cstdio>

#include "bench/table.h"
#include "src/analysis/esa_sim.h"
#include "src/dp/threshold_dp.h"
#include "src/shuffle/stash_shuffle.h"
#include "src/workload/zipf.h"

namespace prochlo {
namespace {

struct EnclaveFixture {
  SecureRandom rng{ToBytes("ablation")};
  IntelRootAuthority intel{rng};
  IntelRootAuthority::Platform platform{intel.ProvisionPlatform(rng)};
  Enclave enclave{EnclaveConfig{}, platform, rng};
};

std::vector<Bytes> MakeItems(size_t n) {
  std::vector<Bytes> items;
  items.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Bytes item(16, 0);
    for (int b = 0; b < 8; ++b) {
      item[b] = static_cast<uint8_t>(i >> (8 * b));
    }
    items.push_back(std::move(item));
  }
  return items;
}

double FailureRate(EnclaveFixture& fx, const StashShuffleParams& params,
                   const std::vector<Bytes>& input, int trials) {
  int failures = 0;
  for (int t = 0; t < trials; ++t) {
    StashShuffler::Options options;
    options.params = params;
    StashShuffler shuffler(fx.enclave, std::move(options));
    if (!shuffler.Shuffle(input, fx.rng).ok()) {
      ++failures;
    }
  }
  return static_cast<double>(failures) / trials;
}

void ChunkCapAblation() {
  std::printf("--- Ablation 1: chunk cap C (N=10K, B=32, S=K*B=640, W=4) ---\n\n");
  EnclaveFixture fx;
  auto input = MakeItems(10'000);
  const size_t b = 32;
  double lambda = 10'000.0 / (b * b);  // D/B ~ 9.8
  TablePrinter table({"C", "C vs D/B", "Failure rate", "Overhead", "log2(eps)"});
  for (size_t c : {10u, 12u, 14u, 17u, 20u, 25u, 30u}) {
    StashShuffleParams params{b, c, 4, 20 * b};
    table.AddRow({std::to_string(c), FormatDouble(c / lambda, 2) + "x",
                  FormatDouble(FailureRate(fx, params, input, 10), 2),
                  FormatDouble(StashOverheadFactor(10'000, params), 2) + "x",
                  FormatDouble(EstimateLog2Epsilon(10'000, params), 1)});
  }
  table.Print();
  std::printf("\n(C near D/B fails or overflows the stash constantly; C ~ D/B + 5*sqrt(D/B)\n"
              "— the paper's setting — succeeds with small overhead.)\n\n");
}

void StashSizeAblation() {
  std::printf("--- Ablation 2: stash size S (N=10K, B=32, C=14, W=4) ---\n\n");
  EnclaveFixture fx;
  auto input = MakeItems(10'000);
  TablePrinter table({"S", "K=S/B", "Failure rate", "Overhead"});
  for (size_t k : {1u, 4u, 8u, 16u, 32u, 64u}) {
    StashShuffleParams params{32, 14, 4, k * 32};
    table.AddRow({std::to_string(k * 32), std::to_string(k),
                  FormatDouble(FailureRate(fx, params, input, 10), 2),
                  FormatDouble(StashOverheadFactor(10'000, params), 2) + "x"});
  }
  table.Print();
  std::printf("\n(Without a meaningful stash the algorithm cannot absorb distribution\n"
              "variance; a stash of a few items per bucket makes failures rare at <1%%\n"
              "extra overhead — the Stash Shuffle's core idea.)\n\n");
}

void WindowAblation() {
  std::printf("--- Ablation 3: compression window W (N=10K, B=32, C=14, S=640) ---\n\n");
  EnclaveFixture fx;
  auto input = MakeItems(10'000);
  TablePrinter table({"W", "Failure rate"});
  for (size_t w : {1u, 2u, 4u, 8u}) {
    StashShuffleParams params{32, 14, w, 640};
    table.AddRow({std::to_string(w), FormatDouble(FailureRate(fx, params, input, 10), 2)});
  }
  table.Print();
  std::printf("\n(W=1 cannot absorb the elasticity of real-item counts per intermediate\n"
              "bucket; the paper's W=4 drives queue failures to ~zero.)\n\n");
}

void ThresholdNoiseAblation() {
  std::printf("--- Ablation 4: thresholding noise sigma vs utility and epsilon ---\n\n");
  ZipfSampler zipf(50'000, 1.1);
  Rng rng(5);
  std::vector<SimReport> reports;
  for (int i = 0; i < 1'000'000; ++i) {
    uint64_t rank = zipf.Sample(rng);
    reports.push_back({rank, rank});
  }
  TablePrinter table({"sigma", "epsilon (delta=1e-6)", "Values recovered (t=20)",
                      "Reports surviving"});
  for (double sigma : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    ShufflerConfig config;
    config.threshold_mode = ThresholdMode::kRandomized;
    config.policy = ThresholdPolicy{20, 10, sigma};
    Rng noise(7);
    auto sim = SimulateShuffle(reports, config, noise);
    table.AddRow({FormatDouble(sigma, 1),
                  FormatDouble(AnalyzeThresholdPolicy(config.policy, 1e-6).epsilon, 2),
                  std::to_string(CountRecoverableValues(sim.histogram, 20)),
                  std::to_string(sim.stats.forwarded)});
  }
  table.Print();
  std::printf("\n(More noise buys smaller epsilon at almost no utility cost — the paper's\n"
              "sigma=2 sits at (2.25, 1e-6) with recovery within a whisker of noiseless.)\n\n");
}

void SecretShareThresholdAblation() {
  std::printf("--- Ablation 5: secret-share threshold t vs recoverable values ---\n\n");
  ZipfSampler zipf(50'000, 1.1);
  Rng rng(6);
  std::map<uint64_t, uint64_t> histogram;
  for (int i = 0; i < 1'000'000; ++i) {
    histogram[zipf.Sample(rng)]++;
  }
  TablePrinter table({"t", "Values recoverable"});
  for (uint64_t t : {1ull, 5ull, 10ull, 20ull, 50ull, 100ull}) {
    table.AddRow({std::to_string(t), std::to_string(CountRecoverableValues(histogram, t))});
  }
  table.Print();
  std::printf("\n(t trades tail coverage for secrecy: values reported by fewer than t\n"
              "clients stay cryptographically locked even from the analyzer.)\n");
}

}  // namespace
}  // namespace prochlo

int main() {
  std::printf("=== Ablations: Stash Shuffle and thresholding design choices ===\n\n");
  prochlo::ChunkCapAblation();
  prochlo::StashSizeAblation();
  prochlo::WindowAblation();
  prochlo::ThresholdNoiseAblation();
  prochlo::SecretShareThresholdAblation();
  return 0;
}

// Ingestion-tier throughput: the shuffler frontend's cost per report from
// the wire to a drained epoch, component by component, plus the batch
// encoder fast path that feeds it.
//
//   * wire       — frame encode + streaming decode (CRC-checked)
//   * tcp        — 4 FrameClients over real sockets through TcpListener,
//                  per-report cost measured send -> ACK (durably spooled)
//   * ingest     — shard + accumulate (in-memory) across shard counts
//   * spool      — frame append to disk segments + recovery scan + replay
//   * recovery   — session-journal replay vs. session count (what a restart
//                  pays before the dedup registry can serve)
//   * seal       — per-report vs batch cohort sealing (BatchSealReports
//                  amortizes fixed-base mults and affine conversions)
//   * drain      — framed reports -> sharded spool -> epoch cut -> shuffle
//                  -> analyzer histogram, end to end
//
// PROCHLO_INGEST_N scales the report count (default 2000; the paper's
// shuffler handles millions — this tracks per-report cost, which is what
// must stay flat).  Results land in BENCH_ingest.json.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include <thread>

#include "bench/json_out.h"
#include "bench/table.h"
#include "src/core/pipeline.h"
#include "src/service/cluster/coordinator.h"
#include "src/service/cluster/merge.h"
#include "src/service/cluster/router.h"
#include "src/service/cluster/shard_group.h"
#include "src/service/connection.h"
#include "src/service/frontend.h"
#include "src/service/ingest.h"
#include "src/service/runtime.h"
#include "src/service/session_journal.h"
#include "src/service/spool.h"
#include "src/service/wal.h"
#include "src/service/wire.h"

namespace prochlo {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

// A bench that silently drops an error measures nothing: fail fast instead.
void BenchCheck(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "bench_ingest: %s: %s\n", what, status.error().message.c_str());
    std::abort();
  }
}
template <typename T>
void BenchCheck(const Result<T>& result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "bench_ingest: %s: %s\n", what, result.error().message.c_str());
    std::abort();
  }
}

std::string PerReport(double seconds, uint64_t n) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.2f us", 1e6 * seconds / static_cast<double>(n));
  return buffer;
}

std::string Seconds(double seconds) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f s", seconds);
  return buffer;
}

void Run() {
  uint64_t n = 2000;
  if (const char* env = std::getenv("PROCHLO_INGEST_N")) {
    n = std::strtoull(env, nullptr, 10);
  }
  std::printf("=== Shuffler-frontend ingestion (N=%llu reports of 64B payload) ===\n\n",
              static_cast<unsigned long long>(n));

  BenchJsonWriter json("ingest");
  TablePrinter table({"Stage", "N", "Total", "Per report"});

  SecureRandom rng(ToBytes("bench-ingest"));
  KeyPair shuffler_keys = KeyPair::Generate(rng);
  KeyPair analyzer_keys = KeyPair::Generate(rng);
  EncoderConfig encoder_config;
  encoder_config.shuffler_public = shuffler_keys.public_key;
  encoder_config.analyzer_public = analyzer_keys.public_key;
  encoder_config.payload_size = 64;
  Encoder encoder(encoder_config);

  // ---- seal: per-report loop vs batch cohort ----
  std::vector<std::pair<std::string, std::string>> inputs;
  inputs.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    std::string value = "value-" + std::to_string(i % 97);
    inputs.emplace_back(value, value);
  }
  auto t0 = std::chrono::steady_clock::now();
  std::vector<Bytes> sealed_single;
  sealed_single.reserve(n);
  for (const auto& [crowd, value] : inputs) {
    auto report = encoder.EncodeValue(value, crowd, rng);
    if (report.ok()) {
      sealed_single.push_back(std::move(report).value());
    }
  }
  double single_seconds = SecondsSince(t0);
  table.AddRow({"seal/per-report", std::to_string(n), Seconds(single_seconds),
                PerReport(single_seconds, n)});
  json.Add("seal_per_report", n, 1e9 * single_seconds / static_cast<double>(n),
           static_cast<double>(n) / single_seconds);

  t0 = std::chrono::steady_clock::now();
  auto sealed_batch = encoder.BatchSealReports(inputs, rng);
  double batch_seconds = SecondsSince(t0);
  if (!sealed_batch.ok()) {
    std::fprintf(stderr, "batch seal failed: %s\n", sealed_batch.error().message.c_str());
    return;
  }
  table.AddRow({"seal/batch-cohort", std::to_string(n),
                Seconds(batch_seconds), PerReport(batch_seconds, n)});
  json.Add("seal_batch_cohort", n, 1e9 * batch_seconds / static_cast<double>(n),
           static_cast<double>(n) / batch_seconds);
  std::printf("batch seal speedup over per-report: %.2fx\n\n", single_seconds / batch_seconds);

  const std::vector<Bytes>& reports = sealed_batch.value();

  // ---- wire: frame + streaming decode ----
  t0 = std::chrono::steady_clock::now();
  Bytes stream;
  stream.reserve(n * FrameWireSize(reports[0].size()));
  for (const auto& report : reports) {
    AppendFrame(stream, report);
  }
  double frame_seconds = SecondsSince(t0);
  table.AddRow({"wire/encode", std::to_string(n), Seconds(frame_seconds),
                PerReport(frame_seconds, n)});
  json.Add("wire_encode", n, 1e9 * frame_seconds / static_cast<double>(n),
           static_cast<double>(n) / frame_seconds);

  t0 = std::chrono::steady_clock::now();
  FrameReader reader(stream);
  uint64_t decoded = 0;
  while (reader.Next()) {
    decoded++;
  }
  double decode_seconds = SecondsSince(t0);
  table.AddRow({"wire/decode", std::to_string(decoded),
                Seconds(decode_seconds), PerReport(decode_seconds, n)});
  json.Add("wire_decode", n, 1e9 * decode_seconds / static_cast<double>(n),
           static_cast<double>(n) / decode_seconds);

  // ---- ingest: shard + accumulate across shard counts ----
  for (size_t shards : {1u, 4u, 16u}) {
    IngestConfig ingest_config;
    ingest_config.num_shards = shards;
    ShardedIngest ingest(ingest_config, nullptr);
    t0 = std::chrono::steady_clock::now();
    for (const auto& report : reports) {
      BenchCheck(ingest.Accept(report), "ingest.Accept");
    }
    double ingest_seconds = SecondsSince(t0);
    std::string label = "ingest/shards=" + std::to_string(shards);
    table.AddRow({label, std::to_string(n), Seconds(ingest_seconds),
                  PerReport(ingest_seconds, n)});
    json.Add(label, n, 1e9 * ingest_seconds / static_cast<double>(n),
             static_cast<double>(n) / ingest_seconds);
  }

  // ---- spool: append, recover, replay ----
  namespace fs = std::filesystem;
  std::string spool_dir = (fs::temp_directory_path() / "prochlo-bench-ingest").string();
  fs::remove_all(spool_dir);
  {
    Spool spool(SpoolConfig{spool_dir, /*fsync_on_seal=*/false});
    BenchCheck(spool.Open(), "spool.Open");
    t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < reports.size(); ++i) {
      BenchCheck(spool.Append(ShardedIngest::ShardOfReport(reports[i], 4), 0, reports[i]), "spool.Append");
    }
    BenchCheck(spool.SealEpoch(0), "spool.SealEpoch");
    double append_seconds = SecondsSince(t0);
    table.AddRow({"spool/append", std::to_string(n),
                  Seconds(append_seconds),
                  PerReport(append_seconds, n)});
    json.Add("spool_append", n, 1e9 * append_seconds / static_cast<double>(n),
             static_cast<double>(n) / append_seconds);
  }
  {
    Spool spool(SpoolConfig{spool_dir, false});
    t0 = std::chrono::steady_clock::now();
    auto recovery = spool.Open();
    double recover_seconds = SecondsSince(t0);
    if (recovery.ok()) {
      table.AddRow({"spool/recover", std::to_string(n),
                    Seconds(recover_seconds),
                    PerReport(recover_seconds, n)});
      json.Add("spool_recover", n, 1e9 * recover_seconds / static_cast<double>(n),
               static_cast<double>(n) / recover_seconds);
    }
    t0 = std::chrono::steady_clock::now();
    auto epoch_stream = spool.OpenEpochStream(0);
    uint64_t replayed = 0;
    while (epoch_stream->Next()) {
      replayed++;
    }
    double replay_seconds = SecondsSince(t0);
    table.AddRow({"spool/replay", std::to_string(replayed),
                  Seconds(replay_seconds),
                  PerReport(replay_seconds, n)});
    json.Add("spool_replay", n, 1e9 * replay_seconds / static_cast<double>(n),
             static_cast<double>(n) / replay_seconds);
  }
  fs::remove_all(spool_dir);

  // ---- wal: the unified report+commit group commit — the durability path
  //      a production frontend actually runs, fsync ON.  Batch is how many
  //      buffered appends share one barrier; group commit's whole point is
  //      fsyncs-per-report < 1 once batches form (the wal_fsyncs rows pin
  //      it: at batch >= 8 strictly fewer fsyncs than reports). ----
  for (uint64_t batch : {uint64_t{1}, uint64_t{8}, uint64_t{64}}) {
    std::string wal_dir =
        (fs::temp_directory_path() / ("prochlo-bench-wal-" + std::to_string(batch))).string();
    fs::remove_all(wal_dir);
    FrontendConfig wal_config;
    wal_config.pipeline.seed = "bench-ingest-wal";
    wal_config.ingest.num_shards = 4;
    wal_config.spool_dir = wal_dir;
    wal_config.fsync_spool = true;  // group commit is an fsync bench
    ShufflerFrontend frontend(wal_config);
    BenchCheck(frontend.Start(), "wal frontend.Start");
    const IngestWal::Stats before = frontend.wal()->stats();

    std::atomic<uint64_t> committed{0};
    t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < reports.size(); i += batch) {
      size_t end = std::min(i + batch, reports.size());
      for (size_t j = i; j < end; ++j) {
        size_t shard = ShardedIngest::ShardOfReport(reports[j], 4);
        BenchCheck(frontend.AcceptRoutedReportAsync(
                       shard, reports[j], ReportContext{},
                       [&committed](const Status& status) {
                         if (status.ok()) {
                           committed.fetch_add(1);
                         }
                       }),
                   "wal AcceptRoutedReportAsync");
      }
      BenchCheck(frontend.BarrierIngest(), "wal BarrierIngest");
    }
    double commit_seconds = SecondsSince(t0);
    const IngestWal::Stats after = frontend.wal()->stats();
    if (committed.load() != reports.size()) {
      std::fprintf(stderr, "wal stage: %llu of %zu reports committed\n",
                   static_cast<unsigned long long>(committed.load()), reports.size());
      std::abort();
    }
    uint64_t fsyncs = after.fsyncs - before.fsyncs;
    std::string label = "wal/commit-batch=" + std::to_string(batch);
    table.AddRow({label, std::to_string(n), Seconds(commit_seconds),
                  PerReport(commit_seconds, n)});
    json.Add("wal_commit_batch=" + std::to_string(batch), n,
             1e9 * commit_seconds / static_cast<double>(n),
             static_cast<double>(n) / commit_seconds);
    // The fsync ledger for this batch size: n is the fsync COUNT, so
    // fsyncs-per-report is this row's n over the commit row's n.
    table.AddRow({"wal/fsyncs-batch=" + std::to_string(batch), std::to_string(fsyncs),
                  Seconds(commit_seconds),
                  fsyncs > 0 ? PerReport(commit_seconds, fsyncs) : "n/a"});
    json.Add("wal_fsyncs_batch=" + std::to_string(batch), fsyncs,
             fsyncs > 0 ? 1e9 * commit_seconds / static_cast<double>(fsyncs) : 0.0,
             static_cast<double>(fsyncs) / commit_seconds);

    if (batch == 64) {
      // Checkpoint: drain the WAL backlog into per-epoch spool segments and
      // truncate.  Per-report cost of making the WAL's claim permanent.
      t0 = std::chrono::steady_clock::now();
      BenchCheck(frontend.wal()->Checkpoint(), "wal Checkpoint");
      double checkpoint_seconds = SecondsSince(t0);
      table.AddRow({"wal/checkpoint", std::to_string(n), Seconds(checkpoint_seconds),
                    PerReport(checkpoint_seconds, n)});
      json.Add("wal_checkpoint", n, 1e9 * checkpoint_seconds / static_cast<double>(n),
               static_cast<double>(n) / checkpoint_seconds);
    }
    fs::remove_all(wal_dir);
  }

  // ---- recovery: session-journal replay vs. session count ----
  // What a restart pays before it can serve: replaying the commit log that
  // backs exactly-once dedup.  One commit per session models the worst
  // shape (no contiguity to sweep, maximal map churn); per-session cost
  // should stay flat as the session count grows.
  for (uint64_t sessions : {uint64_t{100}, uint64_t{1000}, uint64_t{10000}}) {
    std::string journal_dir =
        (fs::temp_directory_path() / "prochlo-bench-recovery").string();
    fs::remove_all(journal_dir);
    fs::create_directories(journal_dir);
    SessionJournalConfig journal_config;
    journal_config.path = journal_dir + "/sessions.journal";
    journal_config.fsync_commits = false;
    journal_config.compact_threshold_bytes = 0;  // keep every record: replay cost, not compaction
    {
      SessionJournal journal(journal_config);
      BenchCheck(journal.Open(), "journal.Open");
      for (uint64_t s = 1; s <= sessions; ++s) {
        BenchCheck(journal.AppendCommit(s, /*watermark_after=*/1, /*seq=*/0), "journal.AppendCommit");
      }
      BenchCheck(journal.SyncUpTo(sessions), "journal.SyncUpTo");
    }
    SessionJournal reopened(journal_config);
    t0 = std::chrono::steady_clock::now();
    auto replayed = reopened.Open();
    double replay_seconds = SecondsSince(t0);
    if (replayed.ok() && replayed.value().live.size() == sessions) {
      std::string label = "recovery/sessions=" + std::to_string(sessions);
      table.AddRow({label, std::to_string(sessions), Seconds(replay_seconds),
                    PerReport(replay_seconds, sessions)});
      json.Add(label, sessions, 1e9 * replay_seconds / static_cast<double>(sessions),
               static_cast<double>(sessions) / replay_seconds);
    } else {
      std::fprintf(stderr, "recovery stage: journal replay failed\n");
    }
    fs::remove_all(journal_dir);
  }

  // ---- pool: concurrent accept via lock-free rings, workers x ring size ----
  // 4 producer threads enqueue the cohort; the grid shows where ring size
  // stops mattering (once workers keep up) and what worker fan-out buys on
  // the in-memory accept path.
  for (size_t workers : {size_t{0}, size_t{2}, size_t{4}}) {
    for (size_t ring : {size_t{256}, size_t{4096}}) {
      if (workers == 0 && ring != 256) {
        continue;  // synchronous mode has no ring; bench it once
      }
      FrontendConfig pool_front_config;
      pool_front_config.pipeline.seed = "bench-ingest-pool";
      pool_front_config.ingest.num_shards = 4;
      ShufflerFrontend pool_frontend(pool_front_config);
      BenchCheck(pool_frontend.Start(), "pool_frontend.Start");
      IngestWorkerPool pool(&pool_frontend, WorkerPoolConfig{workers, ring});
      pool.Start();
      constexpr size_t kProducers = 4;
      t0 = std::chrono::steady_clock::now();
      std::vector<std::thread> producers;
      for (size_t p = 0; p < kProducers; ++p) {
        producers.emplace_back([&pool, &reports, p] {
          for (size_t i = p; i < reports.size(); i += kProducers) {
            BenchCheck(pool.Enqueue(Bytes(reports[i])), "pool.Enqueue");
          }
        });
      }
      for (auto& producer : producers) {
        producer.join();
      }
      BenchCheck(pool.Flush(), "pool.Flush");
      double pool_seconds = SecondsSince(t0);
      pool.Stop();
      std::string label = "pool/workers=" + std::to_string(workers) +
                          ",ring=" + std::to_string(ring);
      table.AddRow({label, std::to_string(n), Seconds(pool_seconds),
                    PerReport(pool_seconds, n)});
      json.Add(label, n, 1e9 * pool_seconds / static_cast<double>(n),
               static_cast<double>(n) / pool_seconds, /*groups=*/1, workers);
    }
  }

  // ---- tcp: the full network tier over real sockets — 4 FrameClients
  //      dial the TcpListener, and a report only counts when its ACK is
  //      back, i.e. after the durable spool append ----
  {
    std::string tcp_dir = (fs::temp_directory_path() / "prochlo-bench-tcp").string();
    fs::remove_all(tcp_dir);
    FrontendConfig tcp_config;
    tcp_config.pipeline.seed = "bench-ingest-tcp";
    tcp_config.ingest.num_shards = 4;
    tcp_config.spool_dir = tcp_dir;
    tcp_config.fsync_spool = false;
    ShufflerFrontend frontend(tcp_config);
    BenchCheck(frontend.Start(), "frontend.Start");
    IngestWorkerPool pool(&frontend, WorkerPoolConfig{/*workers=*/2, /*ring_capacity=*/1024});
    pool.Start();
    FrameServer server(
        [&pool](Bytes report) { return pool.Enqueue(std::move(report)); },
        [&pool](Bytes report, ReportContext ctx, std::function<void(const Status&)> done) {
          pool.EnqueueAsync(std::move(report), ctx, std::move(done));
        });
    server.BindFrontendStats(&frontend.stats());
    TcpListener listener(&server);
    if (!listener.Start().ok()) {
      std::fprintf(stderr, "tcp listener failed to start; skipping socket stage\n");
    } else {
      constexpr size_t kTcpClients = 4;
      t0 = std::chrono::steady_clock::now();
      std::vector<std::thread> clients;
      for (size_t c = 0; c < kTcpClients; ++c) {
        clients.emplace_back([&, c] {
          FrameClient client(FrameClientConfig{/*session_id=*/c + 1});
          auto stream = TcpConnect("127.0.0.1", listener.port());
          if (!stream.ok() || !client.Connect(std::move(stream).value()).ok()) {
            return;
          }
          for (size_t i = c; i < reports.size(); i += kTcpClients) {
            (void)client.SendReport(reports[i]);  // failed sends stay owned for replay; acked book is the check
          }
          client.WaitForAcks(std::chrono::milliseconds(120000));
          client.Close();
        });
      }
      for (auto& client : clients) {
        client.join();
      }
      double tcp_seconds = SecondsSince(t0);
      listener.Stop();
      (void)server.Shutdown();  // teardown; per-connection errors already counted
      pool.Stop();
      ConnectionAckBook book = server.ack_book();
      std::string label = "tcp/clients=" + std::to_string(kTcpClients) + ",acked";
      table.AddRow({label, std::to_string(book.acked), Seconds(tcp_seconds),
                    PerReport(tcp_seconds, n)});
      json.Add(label, n, 1e9 * tcp_seconds / static_cast<double>(n),
               static_cast<double>(n) / tcp_seconds, /*groups=*/1, /*workers=*/2);
      if (book.acked != reports.size()) {
        std::fprintf(stderr, "tcp stage: %llu of %zu reports acked\n",
                     static_cast<unsigned long long>(book.acked), reports.size());
      }
    }
    fs::remove_all(tcp_dir);
  }

  // ---- overlap: frames over connections -> rings -> spool, epoch e
  //      draining while e+1 accumulates ----
  {
    std::string overlap_dir = (fs::temp_directory_path() / "prochlo-bench-overlap").string();
    fs::remove_all(overlap_dir);
    FrontendConfig overlap_config;
    overlap_config.pipeline.shuffler.threshold_mode = ThresholdMode::kNaive;
    overlap_config.pipeline.seed = "bench-ingest-overlap";
    overlap_config.ingest.num_shards = 4;
    overlap_config.spool_dir = overlap_dir;
    overlap_config.fsync_spool = false;
    ShufflerFrontend frontend(overlap_config);
    BenchCheck(frontend.Start(), "frontend.Start");
    const Encoder overlap_encoder = frontend.MakeEncoder();
    SecureRandom overlap_rng(ToBytes("bench-ingest-overlap-clients"));
    auto cohort = overlap_encoder.BatchSealReports(inputs, overlap_rng);

    IngestWorkerPool pool(&frontend, WorkerPoolConfig{/*workers=*/2, /*ring_capacity=*/1024});
    pool.Start();
    DrainScheduler drainer(&frontend, DrainSchedulerConfig{std::chrono::milliseconds(1)});
    drainer.Start();
    t0 = std::chrono::steady_clock::now();
    size_t half = cohort.value().size() / 2;
    FrameServer server([&pool](Bytes report) { return pool.Enqueue(std::move(report)); });
    auto connection = server.Connect();
    for (size_t i = 0; i < half; ++i) {
      BenchCheck(connection->Write(EncodeFrame(cohort.value()[i])), "connection->Write");
    }
    // The pump thread may still be draining the loopback buffer; Flush only
    // barriers reports already enqueued.  Wait for the pump to hand over
    // the whole first half, then flush, so the cut seals a real epoch.
    while (pool.stats().enqueued < half) {
      std::this_thread::yield();
    }
    BenchCheck(pool.Flush(), "pool.Flush");
    BenchCheck(frontend.CutEpoch(), "frontend.CutEpoch");
    drainer.RequestDrain();  // epoch 0 drains while epoch 1 accumulates
    for (size_t i = half; i < cohort.value().size(); ++i) {
      BenchCheck(connection->Write(EncodeFrame(cohort.value()[i])), "connection->Write");
    }
    connection->CloseWrite();
    (void)server.Shutdown();  // teardown; per-connection errors already counted
    BenchCheck(pool.Flush(), "pool.Flush");
    BenchCheck(frontend.CutEpoch(), "frontend.CutEpoch");
    drainer.RequestDrain();
    bool drained_both = drainer.WaitForDrainedEpochs(2, std::chrono::milliseconds(120000));
    double overlap_seconds = SecondsSince(t0);
    drainer.Stop();
    pool.Stop();
    if (drained_both) {
      table.AddRow({"drain/overlap-2-epochs", std::to_string(n),
                    Seconds(overlap_seconds), PerReport(overlap_seconds, n)});
      json.Add("drain_overlap_2_epochs", n, 1e9 * overlap_seconds / static_cast<double>(n),
               static_cast<double>(n) / overlap_seconds, /*groups=*/1, /*workers=*/2);
    } else {
      std::fprintf(stderr, "overlap drain timed out\n");
    }
    fs::remove_all(overlap_dir);
  }

  // ---- cluster: shard-group fan-out, send -> ACK -> merged histogram ----
  // One ClusterClient routes the cohort across N groups by consistent hash;
  // the stage ends only when the coordinator has merged every group's
  // partial into the final histogram.  Per-report cost should stay flat in
  // the group count on loopback (the win is horizontal: each group ingests
  // and drains its share independently).
  {
    FrontendConfig cluster_base;
    cluster_base.pipeline.shuffler.threshold_mode = ThresholdMode::kNaive;
    cluster_base.pipeline.seed = "bench-ingest-cluster";
    cluster_base.ingest.num_shards = 4;
    cluster_base.fsync_spool = false;
    ShufflerFrontend key_holder(cluster_base);
    const Encoder cluster_encoder = key_holder.MakeEncoder();
    SecureRandom cluster_rng(ToBytes("bench-ingest-cluster-clients"));
    auto cohort = cluster_encoder.BatchSealReports(inputs, cluster_rng);
    if (!cohort.ok()) {
      std::fprintf(stderr, "cluster stage: cohort seal failed\n");
    } else {
      for (size_t num_groups : {size_t{1}, size_t{2}, size_t{4}}) {
        std::string root = (fs::temp_directory_path() /
                            ("prochlo-bench-cluster-" + std::to_string(num_groups)))
                               .string();
        fs::remove_all(root);
        std::vector<std::unique_ptr<ShardGroup>> owned;
        std::vector<ShardGroup*> groups;
        bool started = true;
        for (size_t g = 1; g <= num_groups; ++g) {
          ShardGroupConfig group_config;
          group_config.group_id = g;
          group_config.frontend = cluster_base;
          group_config.frontend.spool_dir = root + "/group-" + std::to_string(g);
          group_config.workers = WorkerPoolConfig{/*workers=*/2, /*ring_capacity=*/1024};
          owned.push_back(std::make_unique<ShardGroup>(group_config));
          groups.push_back(owned.back().get());
          started = started && groups.back()->Start().ok();
        }
        if (!started) {
          std::fprintf(stderr, "cluster stage: group start failed\n");
          continue;
        }
        Router router(groups);
        router.Start();
        EpochCoordinator coordinator(groups);
        coordinator.Start();
        HistogramMerge cluster_merge(cluster_base.pipeline);

        t0 = std::chrono::steady_clock::now();
        ClusterClient client(
            router.CurrentMap(),
            [&groups](uint64_t group_id) -> Result<std::unique_ptr<ByteStream>> {
              for (ShardGroup* group : groups) {
                if (group->group_id() == group_id) {
                  return group->Connect();
                }
              }
              return Error{"bench: unknown group"};
            });
        (void)client.Connect();  // a failed connect surfaces as acked=false below
        for (const auto& report : cohort.value()) {
          (void)client.SendReport(report);  // failed sends stay owned; WaitForAllAcked is the check
        }
        bool acked = client.WaitForAllAcked(std::chrono::milliseconds(120000));
        (void)coordinator.CutEpochAll();  // a failed cut surfaces as an incomplete merge below
        auto merged =
            coordinator.MergeEpoch(0, cluster_merge, std::chrono::milliseconds(120000));
        double cluster_seconds = SecondsSince(t0);
        client.Close();
        if (acked && merged.ok() && merged.value().complete()) {
          std::string label = "cluster/groups=" + std::to_string(num_groups) +
                              ",send-ack-merge";
          table.AddRow({label, std::to_string(n), Seconds(cluster_seconds),
                        PerReport(cluster_seconds, n)});
          json.Add(label, n, 1e9 * cluster_seconds / static_cast<double>(n),
                   static_cast<double>(n) / cluster_seconds, num_groups, /*workers=*/2);
        } else {
          std::fprintf(stderr, "cluster stage: groups=%zu did not converge\n", num_groups);
        }
        coordinator.Stop();
        for (ShardGroup* group : groups) {
          (void)group->Stop();  // teardown; errors were counted in group stats
        }
        owned.clear();
        fs::remove_all(root);
      }
    }
  }

  // ---- drain: framed -> sharded spool -> epoch cut -> histogram ----
  {
    std::string drain_dir = (fs::temp_directory_path() / "prochlo-bench-drain").string();
    fs::remove_all(drain_dir);
    FrontendConfig frontend_config;
    frontend_config.pipeline.shuffler.threshold_mode = ThresholdMode::kNaive;
    frontend_config.pipeline.seed = "bench-ingest-frontend";
    frontend_config.ingest.num_shards = 4;
    frontend_config.spool_dir = drain_dir;
    frontend_config.fsync_spool = false;
    ShufflerFrontend frontend(frontend_config);
    BenchCheck(frontend.Start(), "frontend.Start");
    const Encoder frontend_encoder = frontend.MakeEncoder();
    SecureRandom client_rng(ToBytes("bench-ingest-clients"));
    auto cohort = frontend_encoder.BatchSealReports(inputs, client_rng);
    t0 = std::chrono::steady_clock::now();
    for (const auto& report : cohort.value()) {
      BenchCheck(frontend.AcceptFrameStream(EncodeFrame(report)), "frontend.AcceptFrameStream");
    }
    BenchCheck(frontend.CutEpoch(), "frontend.CutEpoch");
    auto drained = frontend.DrainSealedEpochs();
    double drain_seconds = SecondsSince(t0);
    if (drained.ok() && !drained.results.empty()) {
      table.AddRow({"drain/end-to-end", std::to_string(n),
                    Seconds(drain_seconds),
                    PerReport(drain_seconds, n)});
      json.Add("drain_end_to_end", n, 1e9 * drain_seconds / static_cast<double>(n),
               static_cast<double>(n) / drain_seconds);
    } else {
      std::fprintf(stderr, "drain failed\n");
    }
    fs::remove_all(drain_dir);
  }

  table.Print();
  json.Write();
  std::printf(
      "\nShape checks: wire and ingest are tens of ns per report (never the bottleneck);\n"
      "spool append/replay are I/O-bound but stream — RAM stays flat in N; seal dominates\n"
      "client-side cost and the batch path amortizes its EC work; drain is shuffler-bound\n"
      "(outer-layer ECDH), matching the stash-shuffle bench.  The pool grid should stay\n"
      "flat across ring sizes (accept is cheap; rings only buffer bursts); the tcp stage\n"
      "prices the whole network tier — framing, loopback TCP, dedup registry, rings,\n"
      "spool append, and the ack round-trip — and should stay single-digit us/report;\n"
      "the overlapped two-epoch drain should beat two sequential end-to-end drains once\n"
      "cores allow accept and shuffle to proceed concurrently.\n");
}

}  // namespace
}  // namespace prochlo

int main() {
  prochlo::Run();
  return 0;
}

// Regenerates Table 3 (paper §5.2): wall-clock execution time of the Vocab
// pipeline — Encoder + Shuffler 1 for the one-shuffler arrangements
// ({Secret-C, NoC, C}) and both stages of the blinded two-shuffler
// arrangement.
//
// The paper measured 10K..10M clients on an 8-core Xeon with OpenSSL (8 s at
// 10K scaling linearly to 2.0 h at 10M; blind thresholding roughly doubles
// the cost: ~3 vs ~6 public-key ops per report).  This reproduction measures
// the same stages on a single core with from-scratch crypto at a scaled
// client count, verifies the linear scaling and the one-vs-two-shuffler cost
// ratio, and prints per-client extrapolations next to the paper's rows.
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench/table.h"
#include "src/core/analyzer.h"
#include "src/core/blind_shuffler.h"
#include "src/core/encoder.h"

namespace prochlo {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Measured {
  double one_shuffler_seconds = 0;   // encode + shuffler 1 (secret-share mode)
  double blinded_stage1_seconds = 0; // encode + blind + shuffle
  double blinded_stage2_seconds = 0; // decrypt blinded IDs + threshold
};

Measured MeasureAt(uint64_t num_clients) {
  SecureRandom rng(ToBytes("vocab-timing"));
  Rng noise_rng(5);
  Measured out;

  // ---- one-shuffler secret-share pipeline ----
  {
    KeyPair shuffler_keys = KeyPair::Generate(rng);
    KeyPair analyzer_keys = KeyPair::Generate(rng);
    ShufflerConfig config;
    config.threshold_mode = ThresholdMode::kRandomized;
    config.policy = ThresholdPolicy{20, 10, 2};
    Shuffler shuffler(shuffler_keys, config);

    EncoderConfig encoder_config;
    encoder_config.shuffler_public = shuffler_keys.public_key;
    encoder_config.analyzer_public = analyzer_keys.public_key;
    encoder_config.secret_share_threshold = 20;
    encoder_config.payload_size = 192;
    Encoder encoder(encoder_config);

    auto t0 = Clock::now();
    std::vector<Bytes> reports;
    reports.reserve(num_clients);
    for (uint64_t i = 0; i < num_clients; ++i) {
      auto report = encoder.EncodeValue("word" + std::to_string(i % 37), rng);
      reports.push_back(std::move(report).value());
    }
    auto forwarded = shuffler.ProcessBatch(reports, rng, noise_rng);
    out.one_shuffler_seconds = SecondsSince(t0);
    (void)forwarded;
  }

  // ---- blinded two-shuffler pipeline ----
  {
    ShufflerConfig config;
    config.threshold_mode = ThresholdMode::kRandomized;
    config.policy = ThresholdPolicy{20, 10, 2};
    BlindShuffler1 shuffler1(rng);
    BlindShuffler2 shuffler2(rng, config);
    KeyPair analyzer_keys = KeyPair::Generate(rng);

    EncoderConfig encoder_config;
    encoder_config.shuffler_public = shuffler1.public_key();
    encoder_config.shuffler2_public = shuffler2.elgamal_public_key();
    encoder_config.analyzer_public = analyzer_keys.public_key;
    encoder_config.crowd_mode = CrowdIdMode::kBlinded;
    encoder_config.secret_share_threshold = 20;
    encoder_config.payload_size = 192;
    Encoder encoder(encoder_config);

    auto t0 = Clock::now();
    std::vector<Bytes> reports;
    reports.reserve(num_clients);
    for (uint64_t i = 0; i < num_clients; ++i) {
      auto report = encoder.EncodeValue("word" + std::to_string(i % 37), rng);
      reports.push_back(std::move(report).value());
    }
    auto stage1 = shuffler1.Process(reports, rng);
    out.blinded_stage1_seconds = SecondsSince(t0);

    auto t1 = Clock::now();
    auto stage2 = shuffler2.Process(std::move(stage1).value(), rng, noise_rng);
    out.blinded_stage2_seconds = SecondsSince(t1);
    (void)stage2;
  }
  return out;
}

std::string FormatSeconds(double s) {
  if (s >= 3600) {
    return FormatDouble(s / 3600, 1) + " h";
  }
  return FormatDouble(s, 1) + " s";
}

void Run() {
  uint64_t measure_n = 2000;
  if (const char* env = std::getenv("PROCHLO_TIMING_N")) {
    measure_n = std::strtoull(env, nullptr, 10);
  }

  std::printf("=== Table 3: Vocab pipeline execution time (measured at %luK clients, 1 core, "
              "from-scratch crypto) ===\n\n",
              measure_n / 1000);

  // Linearity check at two sizes.
  Measured half = MeasureAt(measure_n / 2);
  Measured full = MeasureAt(measure_n);
  std::printf("Linearity: one-shuffler %.2fx, blinded stage 1 %.2fx, stage 2 %.2fx when "
              "doubling clients (expect ~2x each)\n\n",
              full.one_shuffler_seconds / half.one_shuffler_seconds,
              full.blinded_stage1_seconds / half.blinded_stage1_seconds,
              full.blinded_stage2_seconds / half.blinded_stage2_seconds);

  double per_client_one = full.one_shuffler_seconds / static_cast<double>(measure_n);
  double per_client_b1 = full.blinded_stage1_seconds / static_cast<double>(measure_n);
  double per_client_b2 = full.blinded_stage2_seconds / static_cast<double>(measure_n);

  struct PaperRow {
    const char* one;
    const char* blind1;
    const char* blind2;
  };
  const std::map<uint64_t, PaperRow> paper = {{10'000, {"8 s", "15 s", "7 s"}},
                                              {100'000, {"71 s", "153 s", "64 s"}},
                                              {1'000'000, {"713 s", "0.4 h", "643 s"}},
                                              {10'000'000, {"2.0 h", "4.1 h", "1.8 h"}}};

  TablePrinter table({"#clients", "Enc+Shuf1 {SC,NoC,C}", "Enc+Shuf1 Blinded", "Shuf2 Blinded",
                      "[paper]", "[paper]", "[paper]"});
  for (uint64_t n : {10'000ull, 100'000ull, 1'000'000ull, 10'000'000ull}) {
    auto row = paper.at(n);
    std::string marker = n == measure_n ? " (measured)" : " (extrap.)";
    table.AddRow({FormatCount(n), FormatSeconds(per_client_one * n) + marker,
                  FormatSeconds(per_client_b1 * n), FormatSeconds(per_client_b2 * n), row.one,
                  row.blind1, row.blind2});
  }
  table.Print();

  std::printf(
      "\nShape checks: linear scaling in clients; blind thresholding roughly doubles\n"
      "Encoder+Shuffler-1 cost (~3 vs ~6 public-key ops per report) and adds a Shuffler-2\n"
      "stage cheaper than stage 1 — the same ratios as the paper's OpenSSL deployment.\n"
      "Absolute times differ by the from-scratch-crypto vs OpenSSL constant (within ~2x\n"
      "here since the fixed-base/batched fast paths landed).\n");
}

}  // namespace
}  // namespace prochlo

int main() {
  prochlo::Run();
  return 0;
}

// Regenerates Table 1 (paper §4.1.4): Stash Shuffle parameter scenarios,
// their security, and relative processing overheads for 318-byte encrypted
// items (64 data bytes + 8-byte crowd IDs).
//
// Overhead is exact arithmetic ((N + B^2*C + S) / N) and matches the paper
// to the last digit.  log2(eps) uses this repo's Poisson-tail approximation
// of the companion security analysis [50]; the paper's published values are
// shown alongside.
#include <cstdio>

#include "bench/table.h"
#include "src/shuffle/stash_params.h"

namespace prochlo {
namespace {

struct Row {
  uint64_t n;
  StashShuffleParams params;
  double paper_log_eps;
  double paper_overhead;
};

void Run() {
  std::printf("=== Table 1: Stash Shuffle parameter scenarios (318-byte items) ===\n\n");
  const Row rows[] = {
      {10'000'000, {1000, 25, 4, 40'000}, -80.1, 3.50},
      {50'000'000, {2000, 30, 4, 86'000}, -81.8, 3.40},
      {100'000'000, {3000, 30, 4, 117'000}, -81.9, 3.70},
      {200'000'000, {4400, 24, 4, 170'000}, -64.5, 3.32},
  };

  TablePrinter table({"N", "B", "C", "W", "S", "log2(eps)", "[paper]", "Overhead", "[paper]"});
  for (const auto& row : rows) {
    table.AddRow({FormatCount(row.n), std::to_string(row.params.num_buckets),
                  std::to_string(row.params.chunk_cap), std::to_string(row.params.window),
                  FormatCount(row.params.stash_size),
                  FormatDouble(EstimateLog2Epsilon(row.n, row.params), 1),
                  FormatDouble(row.paper_log_eps, 1),
                  FormatDouble(StashOverheadFactor(row.n, row.params), 2) + "x",
                  FormatDouble(row.paper_overhead, 2) + "x"});
  }
  table.Print();

  std::printf(
      "\nAuto-chosen parameters for the same sizes (ChooseStashParams, 92 MB enclave):\n\n");
  TablePrinter auto_table({"N", "B", "C", "S", "log2(eps)", "Overhead", "PrivMem"});
  for (const auto& row : rows) {
    StashShuffleParams params = ChooseStashParams(row.n, 318, 92ull * 1024 * 1024);
    auto_table.AddRow(
        {FormatCount(row.n), std::to_string(params.num_buckets),
         std::to_string(params.chunk_cap), FormatCount(params.stash_size),
         FormatDouble(EstimateLog2Epsilon(row.n, params), 1),
         FormatDouble(StashOverheadFactor(row.n, params), 2) + "x",
         FormatDouble(static_cast<double>(EstimatePrivateMemoryBytes(row.n, 318, params)) /
                          (1024.0 * 1024.0),
                      1) +
             " MB"});
  }
  auto_table.Print();
}

}  // namespace
}  // namespace prochlo

int main() {
  prochlo::Run();
  return 0;
}

#!/usr/bin/env bash
# Build + test + quick bench smoke: the tier-1 gate, runnable locally and in CI.
#   scripts/check.sh [build-dir]
#   CHECK_SANITIZE=address,undefined scripts/check.sh build-asan
#     — sanitizer mode: builds with -fsanitize=<list> and runs the tier-1
#       suites only (no bench smoke; sanitized benches are not meaningful).
#   CHECK_SANITIZE=thread CHECK_SUITES='service|wire_format|determinism|util' \
#       scripts/check.sh build-tsan
#     — CHECK_SUITES (a ctest -R regex) restricts the run to the named
#       suites; used by the TSan job, where the full crypto suites are slow
#       and single-threaded anyway.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"
JOBS="$(nproc 2>/dev/null || echo 2)"
SANITIZE="${CHECK_SANITIZE:-}"
SUITES="${CHECK_SUITES:-}"

echo "== configure =="
cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DPROCHLO_SANITIZE="$SANITIZE"

echo "== build =="
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "== test =="
if [[ -n "$SUITES" ]]; then
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" -R "$SUITES"
else
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
fi

if [[ -n "$SANITIZE" ]]; then
  # Sanitized pass covers the suites above plus the service thread matrix
  # (including the TCP fault-injection suite — loopback sockets work fine in
  # CI); skip the bench smoke, whose timings are meaningless under
  # sanitizers.  PROCHLO_NETWORK_SEED pins the fault-injection schedule; CI
  # leaves it at the suite's default so failures reproduce locally.
  for threads in 0 4; do
    echo "-- sanitized, PROCHLO_STASH_THREADS=$threads --"
    PROCHLO_STASH_THREADS="$threads" \
      ctest --test-dir "$BUILD_DIR" --output-on-failure -R 'service_test|service_runtime_test|service_network_test|service_durability_test|service_cluster_test|wire_format_test'
  done
  echo "== OK (sanitize: $SANITIZE) =="
  exit 0
fi

echo "== service thread matrix =="
# The ingestion-tier suites re-run pinned to each worker count: the epoch
# drain must be bit-identical sequential and threaded.
for threads in 0 4; do
  echo "-- PROCHLO_STASH_THREADS=$threads --"
  PROCHLO_STASH_THREADS="$threads" \
    ctest --test-dir "$BUILD_DIR" --output-on-failure -R 'service_test|service_runtime_test|service_network_test|service_durability_test|service_cluster_test|wire_format_test'
done

echo "== bench smoke =="
# Tiny runs: confirm the benches execute and emit their BENCH_*.json files.
(cd "$BUILD_DIR" && ./bench_crypto --benchmark_filter='BaseMult' --benchmark_min_time=0.05)
(cd "$BUILD_DIR" && PROCHLO_STASH_MAX_N=10000 PROCHLO_STASH_THREADS=0 ./bench_stash_shuffle)
(cd "$BUILD_DIR" && PROCHLO_INGEST_N=500 ./bench_ingest)
test -s "$BUILD_DIR/BENCH_crypto.json"
test -s "$BUILD_DIR/BENCH_stash_shuffle.json"
test -s "$BUILD_DIR/BENCH_ingest.json"
# The ingest bench must include the multi-group cluster stage (a silent
# skip there would leave the cluster path unsmoked).
grep -q '"op": "cluster/groups=4,send-ack-merge"' "$BUILD_DIR/BENCH_ingest.json"

echo "== OK =="

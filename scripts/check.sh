#!/usr/bin/env bash
# Build + test + quick bench smoke: the tier-1 gate, runnable locally and in CI.
#   scripts/check.sh [build-dir]
#   CHECK_SANITIZE=address,undefined scripts/check.sh build-asan
#     — sanitizer mode: builds with -fsanitize=<list> and runs the tier-1
#       suites only (no bench smoke; sanitized benches are not meaningful).
#   CHECK_SANITIZE=thread CHECK_SUITES='service|wire_format|determinism|util' \
#       scripts/check.sh build-tsan
#     — CHECK_SUITES (a ctest -R regex) restricts the run to the named
#       suites; used by the TSan job, where the full crypto suites are slow
#       and single-threaded anyway.
#   CHECK_LINT=1 scripts/check.sh build-lint
#     — static-analysis mode: runs scripts/lint.py, then (when clang /
#       clang-tidy are installed) a clang build with -Werror=thread-safety
#       and clang-tidy over src/.  No tests, no benches; CI's
#       static-analysis job runs this with clang present, and locally it
#       degrades to the lint plus a notice for the missing tools.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"
JOBS="$(nproc 2>/dev/null || echo 2)"
SANITIZE="${CHECK_SANITIZE:-}"
SUITES="${CHECK_SUITES:-}"
LINT="${CHECK_LINT:-}"

if [[ -n "$LINT" ]]; then
  echo "== lint self-test =="
  # The taint rules are negative-tested first: injected violations must
  # flag and lint:allow must suppress, or the lint run below proves nothing.
  python3 "$REPO_ROOT/scripts/lint.py" --self-test

  echo "== lint =="
  python3 "$REPO_ROOT/scripts/lint.py" "$REPO_ROOT"

  if command -v clang++ >/dev/null 2>&1; then
    echo "== clang -Werror=thread-safety =="
    # The annotations in src/util/thread_annotations.h only analyze under
    # clang; this build is the gate that makes GUARDED_BY/REQUIRES real.
    # -Wthread-safety-beta adds ACQUIRED_BEFORE/AFTER lock-order checking
    # (warnings, not errors, until the analysis graduates).
    cmake -B "$BUILD_DIR" -S "$REPO_ROOT" \
      -DCMAKE_CXX_COMPILER=clang++ -DCMAKE_C_COMPILER=clang
    cmake --build "$BUILD_DIR" -j "$JOBS"
  else
    echo "-- clang++ not installed; skipping the thread-safety build" \
         "(annotations compile as no-ops under GCC) --"
  fi

  if command -v clang-tidy >/dev/null 2>&1; then
    echo "== clang-tidy =="
    cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    find "$REPO_ROOT/src" -name '*.cc' -print0 |
      xargs -0 -P "$JOBS" -n 8 clang-tidy -p "$BUILD_DIR" --quiet
  else
    echo "-- clang-tidy not installed; skipping (CI's static-analysis job runs it) --"
  fi

  if command -v clang-query >/dev/null 2>&1; then
    echo "== clang-query ct checks =="
    # AST-shaped constant-time checks over the crypto tier (see
    # scripts/ct_check.clang-query); zero matches expected.
    cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    ct_query_out="$(clang-query -p "$BUILD_DIR" \
      -f "$REPO_ROOT/scripts/ct_check.clang-query" "$REPO_ROOT"/src/crypto/*.cc 2>&1)"
    ct_matches="$(grep -c 'binds here' <<<"$ct_query_out" || true)"
    if [[ "$ct_matches" -ne 0 ]]; then
      echo "$ct_query_out"
      echo "FAIL: $ct_matches constant-time AST violation(s) in src/crypto/"
      exit 1
    fi
    echo "-- clang-query: 0 matches --"
  else
    echo "-- clang-query not installed; skipping AST ct checks --"
  fi

  echo "== OK (lint) =="
  exit 0
fi

echo "== configure =="
cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DPROCHLO_SANITIZE="$SANITIZE"

echo "== build =="
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "== test =="
if [[ -n "$SUITES" ]]; then
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" -R "$SUITES"
else
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
fi

if [[ -n "$SANITIZE" ]]; then
  # Sanitized pass covers the suites above plus the service thread matrix
  # (including the TCP fault-injection suite — loopback sockets work fine in
  # CI); skip the bench smoke, whose timings are meaningless under
  # sanitizers.  PROCHLO_NETWORK_SEED pins the fault-injection schedule; CI
  # leaves it at the suite's default so failures reproduce locally.
  for threads in 0 4; do
    echo "-- sanitized, PROCHLO_STASH_THREADS=$threads --"
    PROCHLO_STASH_THREADS="$threads" \
      ctest --test-dir "$BUILD_DIR" --output-on-failure -R 'service_test|service_runtime_test|service_network_test|service_durability_test|service_cluster_test|service_wal_test|wire_format_test'
  done
  echo "== OK (sanitize: $SANITIZE) =="
  exit 0
fi

echo "== service thread matrix =="
# The ingestion-tier suites re-run pinned to each worker count: the epoch
# drain must be bit-identical sequential and threaded.
for threads in 0 4; do
  echo "-- PROCHLO_STASH_THREADS=$threads --"
  PROCHLO_STASH_THREADS="$threads" \
    ctest --test-dir "$BUILD_DIR" --output-on-failure -R 'service_test|service_runtime_test|service_network_test|service_durability_test|service_cluster_test|service_wal_test|wire_format_test'
done

echo "== bench smoke =="
# Tiny runs: confirm the benches execute and emit their BENCH_*.json files.
(cd "$BUILD_DIR" && ./bench_crypto --benchmark_filter='BaseMult' --benchmark_min_time=0.05)
(cd "$BUILD_DIR" && PROCHLO_STASH_MAX_N=10000 PROCHLO_STASH_THREADS=0 ./bench_stash_shuffle)
(cd "$BUILD_DIR" && PROCHLO_INGEST_N=500 ./bench_ingest)
test -s "$BUILD_DIR/BENCH_crypto.json"
test -s "$BUILD_DIR/BENCH_stash_shuffle.json"
test -s "$BUILD_DIR/BENCH_ingest.json"
# The ingest bench must include the multi-group cluster stage (a silent
# skip there would leave the cluster path unsmoked).
grep -q '"op": "cluster/groups=4,send-ack-merge"' "$BUILD_DIR/BENCH_ingest.json"
# The WAL durability stage: append/group-commit and checkpoint rows must be
# present, and group commit must actually amortize — at batch >= 8 the
# fsync count (the wal_fsyncs row's n) is strictly below the report count,
# i.e. fsyncs-per-report < 1.  One fsync per report would mean the group
# commit leader/follower protocol silently stopped batching.
grep -q '"op": "wal_commit_batch=8"' "$BUILD_DIR/BENCH_ingest.json"
grep -q '"op": "wal_checkpoint"' "$BUILD_DIR/BENCH_ingest.json"
wal_fsyncs=$(sed -n 's/.*"op": "wal_fsyncs_batch=8", "n": \([0-9]*\),.*/\1/p' "$BUILD_DIR/BENCH_ingest.json")
test -n "$wal_fsyncs"
test "$wal_fsyncs" -lt 500  # PROCHLO_INGEST_N above

echo "== ct harness smoke =="
# Functional pass of the ctgrind scenarios (no shadow backend here; the CI
# ct-verify job runs the same binary under valgrind).
"$BUILD_DIR/ct_harness" all

echo "== OK =="

#!/usr/bin/env bash
# Dynamic constant-time verification (ctgrind-style).
#
# Drives build/ct_harness under valgrind:
#   1. Positives: the four real crypto scenarios (ecdh, elgamal-decrypt,
#      gcm-verify, hmac-verify) must produce ZERO shadow-state errors —
#      no branch or memory address may depend on poisoned secret bytes.
#   2. Negatives: the planted violations (--inject=branch|index|tag-memcmp)
#      MUST be reported.  A verifier that stays quiet on a planted bug is
#      not evidence of anything.
#
# Degrades gracefully: without valgrind (or without the valgrind headers at
# build time, which leaves the poison hooks inert) it runs the harness as a
# plain functional smoke test and reports SKIP for the shadow checks.
#
# Usage: scripts/ct_verify.sh [build-dir]   (default: build)
set -u

BUILD_DIR="${1:-build}"
HARNESS="$BUILD_DIR/ct_harness"

if [ ! -x "$HARNESS" ]; then
  echo "ct-verify: FAIL ($HARNESS not built; configure and build first)" >&2
  exit 1
fi

# Functional smoke always runs: every scenario must produce correct output
# regardless of any shadow backend.
if ! "$HARNESS" all; then
  echo "ct-verify: FAIL (functional smoke: a scenario computed a wrong result)" >&2
  exit 1
fi

if ! command -v valgrind >/dev/null 2>&1; then
  echo "ct-verify: SKIP shadow checks (valgrind not installed)"
  exit 0
fi

VALGRIND=(valgrind --quiet --error-exitcode=99)

# The binary must have been compiled with the valgrind client requests
# (ct.cc picks them up via __has_include(<valgrind/memcheck.h>)).  If the
# headers were missing at build time, poisoning is a no-op and a "clean" run
# proves nothing — detect that and skip rather than claim a pass.
backend="$("${VALGRIND[@]}" "$HARNESS" ecdh 2>/dev/null | grep -o 'backend-active=\w*')"
if [ "$backend" != "backend-active=yes" ]; then
  echo "ct-verify: SKIP shadow checks (poison backend inert: $backend;" \
       "install valgrind headers and rebuild)"
  exit 0
fi

fail=0

for scenario in ecdh elgamal-decrypt gcm-verify hmac-verify; do
  log="$(mktemp)"
  if "${VALGRIND[@]}" "$HARNESS" "$scenario" >/dev/null 2>"$log"; then
    echo "ct-verify: PASS $scenario (no secret-dependent branches or indices)"
  else
    echo "ct-verify: FAIL $scenario — secret-dependent operation detected:" >&2
    cat "$log" >&2
    fail=1
  fi
  rm -f "$log"
done

for inject in branch index tag-memcmp; do
  if "${VALGRIND[@]}" "$HARNESS" --inject="$inject" >/dev/null 2>&1; then
    echo "ct-verify: FAIL inject=$inject — planted violation NOT detected" >&2
    fail=1
  else
    echo "ct-verify: PASS inject=$inject (planted violation caught)"
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "ct-verify: FAIL" >&2
  exit 1
fi
echo "ct-verify: OK (4 scenarios shadow-clean, 3 planted violations caught)"

#!/usr/bin/env python3
"""Repo lint: fast, dependency-free checks of invariants the compiler can't see.

Rules (each suppressible per line with a trailing `// lint:allow(<rule>)`):

  raw-sync-primitive
      No raw std::mutex / std::shared_mutex / std::condition_variable /
      lock_guard / unique_lock / scoped_lock / shared_lock anywhere in src/
      outside src/util/thread_annotations.h.  Everything must go through the
      CAPABILITY-annotated Mutex/SharedMutex/CondVar wrappers so clang's
      -Wthread-safety sees every acquisition.

  crowd-plaintext-leak
      No printing or logging of plaintext crowd identifiers outside
      src/analysis/.  This is the paper's core invariant: the shuffler and
      everything upstream of the analyzer only ever see ciphertext; a stray
      debug printf of a crowd ID is a privacy hole, not a style problem.

  fsync-before-rename
      In the durability tier (src/service/spool.cc, session_journal.cc), a
      Rename() that commits a rewrite must be preceded by a Sync() within the
      same window of code, and a seal-marker create must follow the segment
      Sync.  Rename-before-fsync turns the atomic-commit idiom into a
      crash-window; this catches the ordering regressing by accident.

Usage: scripts/lint.py [repo_root]   (exit 0 clean, 1 with findings)
"""

import os
import re
import sys

RAW_PRIMITIVE = re.compile(
    r"\bstd::(mutex|timed_mutex|recursive_mutex|shared_mutex|shared_timed_mutex|"
    r"condition_variable|condition_variable_any|lock_guard|unique_lock|"
    r"scoped_lock|shared_lock)\b"
)

PRINT_CALL = re.compile(r"\b(printf|fprintf|snprintf|sprintf|puts|fputs)\s*\(|std::(cout|cerr|clog)\b")
CROWD_ID = re.compile(r"\bcrowd\w*", re.IGNORECASE)

RENAME_CALL = re.compile(r"->\s*Rename\s*\(")
SYNC_CALL = re.compile(r"\bSync\s*\(")
MARKER_CREATE = re.compile(r"Open\s*\(\s*marker")
FSYNC_WINDOW = 40  # lines of lookback for the ordering idiom

ALLOW = re.compile(r"lint:allow\(([a-z-]+)\)")

# The one file allowed to hold raw primitives: it is the wrapper.
PRIMITIVE_EXEMPT = {os.path.join("src", "util", "thread_annotations.h")}
# The analyzer is the trust boundary where plaintext crowds legitimately exist.
CROWD_EXEMPT_PREFIX = os.path.join("src", "analysis") + os.sep
# Durability-tier files whose commit idioms are order-checked.
DURABILITY_FILES = {
    os.path.join("src", "service", "spool.cc"),
    os.path.join("src", "service", "session_journal.cc"),
}


def strip_comments_and_strings(line, in_block_comment):
    """Returns (code-only text, code-with-string-contents, still-in-block).
    Crude but fast and good enough: handles //, /* */, and double-quoted
    strings per line.  The second form keeps string literal contents — a
    plaintext leak often announces itself in the format string."""
    out = []
    out_with_strings = []
    i = 0
    n = len(line)
    while i < n:
        if in_block_comment:
            end = line.find("*/", i)
            if end < 0:
                return "".join(out), "".join(out_with_strings), True
            i = end + 2
            in_block_comment = False
            continue
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c == "/" and i + 1 < n and line[i + 1] == "*":
            in_block_comment = True
            i += 2
            continue
        if c == '"':
            start = i
            i += 1
            while i < n and line[i] != '"':
                i += 2 if line[i] == "\\" else 1
            i += 1
            out.append('""')
            out_with_strings.append(line[start:i])
            continue
        out.append(c)
        out_with_strings.append(c)
        i += 1
    return "".join(out), "".join(out_with_strings), in_block_comment


def lint_file(root, rel, findings):
    path = os.path.join(root, rel)
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            raw_lines = f.readlines()
    except OSError as e:
        findings.append((rel, 0, "io", f"cannot read: {e}"))
        return

    in_block = False
    code_lines = []
    code_with_strings = []
    for raw in raw_lines:
        code, with_strings, in_block = strip_comments_and_strings(raw.rstrip("\n"), in_block)
        code_lines.append(code)
        code_with_strings.append(with_strings)

    def allowed(lineno, rule):
        return any(m == rule for m in ALLOW.findall(raw_lines[lineno - 1]))

    if rel not in PRIMITIVE_EXEMPT:
        for i, code in enumerate(code_lines, 1):
            m = RAW_PRIMITIVE.search(code)
            if m and not allowed(i, "raw-sync-primitive"):
                findings.append((rel, i, "raw-sync-primitive",
                                 f"raw {m.group(0)}; use the annotated wrappers in "
                                 "src/util/thread_annotations.h"))

    if not rel.startswith(CROWD_EXEMPT_PREFIX):
        for i, code in enumerate(code_with_strings, 1):
            if PRINT_CALL.search(code) and CROWD_ID.search(code):
                if not allowed(i, "crowd-plaintext-leak"):
                    findings.append((rel, i, "crowd-plaintext-leak",
                                     "printing a crowd identifier outside src/analysis/ — "
                                     "shufflers must only ever see ciphertext"))

    if rel in DURABILITY_FILES:
        for i, code in enumerate(code_lines, 1):
            if RENAME_CALL.search(code) and not allowed(i, "fsync-before-rename"):
                window = code_lines[max(0, i - 1 - FSYNC_WINDOW):i - 1]
                if not any(SYNC_CALL.search(w) for w in window):
                    findings.append((rel, i, "fsync-before-rename",
                                     f"Rename with no Sync in the preceding {FSYNC_WINDOW} "
                                     "lines — the atomic-commit idiom requires fsync first"))
            if MARKER_CREATE.search(code) and not allowed(i, "fsync-before-rename"):
                window = code_lines[max(0, i - 1 - FSYNC_WINDOW):i - 1]
                if not any(SYNC_CALL.search(w) for w in window):
                    findings.append((rel, i, "fsync-before-rename",
                                     "seal-marker create with no segment Sync in the "
                                     f"preceding {FSYNC_WINDOW} lines — a marker must imply "
                                     "durable segments"))


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    findings = []
    scanned = 0
    for dirpath, _, filenames in os.walk(os.path.join(root, "src")):
        for name in sorted(filenames):
            if not name.endswith((".h", ".cc")):
                continue
            rel = os.path.relpath(os.path.join(dirpath, name), root)
            scanned += 1
            lint_file(root, rel, findings)

    if findings:
        for rel, line, rule, msg in sorted(findings):
            print(f"{rel}:{line}: [{rule}] {msg}")
        print(f"\nlint: {len(findings)} finding(s) in {scanned} files "
              "(suppress a deliberate exception with '// lint:allow(<rule>)')")
        return 1
    print(f"lint: OK ({scanned} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

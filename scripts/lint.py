#!/usr/bin/env python3
"""Repo lint: fast, dependency-free checks of invariants the compiler can't see.

Rules (each suppressible per line with a trailing `// lint:allow(<rule>)`):

  raw-sync-primitive
      No raw std::mutex / std::shared_mutex / std::condition_variable /
      lock_guard / unique_lock / scoped_lock / shared_lock anywhere in src/
      outside src/util/thread_annotations.h.  Everything must go through the
      CAPABILITY-annotated Mutex/SharedMutex/CondVar wrappers so clang's
      -Wthread-safety sees every acquisition.

  crowd-plaintext-leak
      No printing or logging of plaintext crowd identifiers outside
      src/analysis/.  This is the paper's core invariant: the shuffler and
      everything upstream of the analyzer only ever see ciphertext; a stray
      debug printf of a crowd ID is a privacy hole, not a style problem.

  fsync-before-rename
      In the durability tier (src/service/spool.cc, session_journal.cc), a
      Rename() that commits a rewrite must be preceded by a Sync() within the
      same window of code, and a seal-marker create must follow the segment
      Sync.  Rename-before-fsync turns the atomic-commit idiom into a
      crash-window; this catches the ordering regressing by accident.

  secret-branch / secret-index / secret-compare
      Constant-time taint discipline (src/crypto/ct.h): data that is
      Secret<>-typed — or follows the secret naming convention (secret_*,
      private_key, alpha_) — must never reach an if/while/for/switch
      condition, an array subscript, or an ==/!=/memcmp comparison outside
      the ct primitive implementation itself.  The Secret<T> wrapper deletes
      the loud footguns (operator==, bool conversion, operator[]) at compile
      time; these rules catch the quiet ones — branching or indexing on an
      Expose()d value.  Taint is per-line and heuristic by design: the
      dynamic poison harness (tools/ct_harness.cc) is the backstop that
      tracks real data flow.

  secret-expose
      .Expose()/.ExposeMutable() outside src/crypto/: core/service code must
      consume secrets through the crypto-tier APIs, or declassify via the
      greppable .Declassify().  Expose() is the crypto tier's internal
      "stay-tainted" accessor, not an escape hatch.

  ct-declassify-reason
      Every declassification point (.Declassify() call, ct::Unpoison*,
      ct::Declassify*) must carry a same-line `// ct:declassify(<reason>)`
      comment.  This keeps `grep -rn 'ct:declassify' src` a complete,
      self-justifying registry of where secrets leave the taint domain.

Usage: scripts/lint.py [repo_root]      (exit 0 clean, 1 with findings)
       scripts/lint.py --self-test      (negative tests: injected violations
                                         must flag; lint:allow must suppress)
"""

import os
import re
import sys
import tempfile

RAW_PRIMITIVE = re.compile(
    r"\bstd::(mutex|timed_mutex|recursive_mutex|shared_mutex|shared_timed_mutex|"
    r"condition_variable|condition_variable_any|lock_guard|unique_lock|"
    r"scoped_lock|shared_lock)\b"
)

PRINT_CALL = re.compile(r"\b(printf|fprintf|snprintf|sprintf|puts|fputs)\s*\(|std::(cout|cerr|clog)\b")
CROWD_ID = re.compile(r"\bcrowd\w*", re.IGNORECASE)

RENAME_CALL = re.compile(r"->\s*Rename\s*\(")
SYNC_CALL = re.compile(r"\bSync\s*\(")
MARKER_CREATE = re.compile(r"Open\s*\(\s*marker")
FSYNC_WINDOW = 40  # lines of lookback for the ordering idiom

ALLOW = re.compile(r"lint:allow\(([a-z-]+)\)")

# --- secret-taint rules ------------------------------------------------------
# A Secret<T>/SecretBytes declaration taints the declared name for the rest
# of the file (line-level heuristic; per-file scope).
SECRET_DECL = re.compile(r"\b(?:Secret\s*<[^>]*>|SecretBytes)\s*&?\s*(\w+)\s*(.?)")
# Names that are tainted by convention even without a visible declaration
# (members declared in another file, parameters renamed across TUs).
# `secret_share*` is excluded: those names describe the secret-sharing
# subsystem (e.g. the public secret_share_threshold config knob), not data.
SECRET_NAME = re.compile(r"\b(?:secret_(?!share)\w+|private_key|alpha_)\b")
BRANCH_HEAD = re.compile(r"\b(?:if|while|for|switch)\s*\(")
MEMCMP_CALL = re.compile(r"\b(?:memcmp|strcmp|strncmp)\s*\(")
EQUALITY_OP = re.compile(r"[^=!<>]==[^=]|!=")
EXPOSE_CALL = re.compile(r"\.Expose(?:Mutable)?\s*\(")
DECLASSIFY_CALL = re.compile(r"\.Declassify\s*\(|\bct::Unpoison\w*\s*[(<]|\bct::Declassify\w*\s*\(")
DECLASSIFY_REASON = re.compile(r"ct:declassify\(")
# `name = <expr involving a tainted name>` taints `name` (one-step flow).
# Captures the base object of a member store (`out.c1 = ...` taints `out`).
ASSIGN = re.compile(r"(?<![.\w>])(\w+)(?:(?:\.|->)\w+)*\s*=(?![=<>])")

# The one file allowed to hold raw primitives: it is the wrapper.
PRIMITIVE_EXEMPT = {os.path.join("src", "util", "thread_annotations.h")}
# The analyzer is the trust boundary where plaintext crowds legitimately exist.
CROWD_EXEMPT_PREFIX = os.path.join("src", "analysis") + os.sep
# Durability-tier files whose commit idioms are order-checked.
DURABILITY_FILES = {
    os.path.join("src", "service", "spool.cc"),
    os.path.join("src", "service", "session_journal.cc"),
    os.path.join("src", "service", "wal.cc"),
}
# The ct primitive implementation: masks, selects, and the declassification
# barrier itself live here, so the taint rules do not apply to it.
CT_IMPL_FILES = {
    os.path.join("src", "crypto", "ct.h"),
    os.path.join("src", "crypto", "ct.cc"),
}
# Expose() is legitimate inside the crypto tier (it is how ct-lane code reads
# a secret while keeping the taint); everyone else must go through Declassify.
CRYPTO_PREFIX = os.path.join("src", "crypto") + os.sep


def strip_comments_and_strings(line, in_block_comment):
    """Returns (code-only text, code-with-string-contents, still-in-block).
    Crude but fast and good enough: handles //, /* */, and double-quoted
    strings per line.  The second form keeps string literal contents — a
    plaintext leak often announces itself in the format string."""
    out = []
    out_with_strings = []
    i = 0
    n = len(line)
    while i < n:
        if in_block_comment:
            end = line.find("*/", i)
            if end < 0:
                return "".join(out), "".join(out_with_strings), True
            i = end + 2
            in_block_comment = False
            continue
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c == "/" and i + 1 < n and line[i + 1] == "*":
            in_block_comment = True
            i += 2
            continue
        if c == '"':
            start = i
            i += 1
            while i < n and line[i] != '"':
                i += 2 if line[i] == "\\" else 1
            i += 1
            out.append('""')
            out_with_strings.append(line[start:i])
            continue
        out.append(c)
        out_with_strings.append(c)
        i += 1
    return "".join(out), "".join(out_with_strings), in_block_comment


def lint_file(root, rel, findings):
    path = os.path.join(root, rel)
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            raw_lines = f.readlines()
    except OSError as e:
        findings.append((rel, 0, "io", f"cannot read: {e}"))
        return

    in_block = False
    code_lines = []
    code_with_strings = []
    for raw in raw_lines:
        code, with_strings, in_block = strip_comments_and_strings(raw.rstrip("\n"), in_block)
        code_lines.append(code)
        code_with_strings.append(with_strings)

    def allowed(lineno, rule):
        return any(m == rule for m in ALLOW.findall(raw_lines[lineno - 1]))

    if rel not in PRIMITIVE_EXEMPT:
        for i, code in enumerate(code_lines, 1):
            m = RAW_PRIMITIVE.search(code)
            if m and not allowed(i, "raw-sync-primitive"):
                findings.append((rel, i, "raw-sync-primitive",
                                 f"raw {m.group(0)}; use the annotated wrappers in "
                                 "src/util/thread_annotations.h"))

    if not rel.startswith(CROWD_EXEMPT_PREFIX):
        for i, code in enumerate(code_with_strings, 1):
            if PRINT_CALL.search(code) and CROWD_ID.search(code):
                if not allowed(i, "crowd-plaintext-leak"):
                    findings.append((rel, i, "crowd-plaintext-leak",
                                     "printing a crowd identifier outside src/analysis/ — "
                                     "shufflers must only ever see ciphertext"))

    if rel not in CT_IMPL_FILES:
        # Collect per-file Secret<> declarations (skipping function
        # declarations, where the captured word is the function name).
        tainted = set()

        def taint_hit(code):
            m = SECRET_NAME.search(code)
            if m:
                return m.group(0)
            for t in tainted:
                if re.search(r"\b" + re.escape(t) + r"\b", code):
                    return t
            return None

        for i, code in enumerate(code_lines, 1):
            # Taint tracking is function-scoped: a closing brace at column 0
            # ends the scope, so same-named locals in the next function (a
            # public-lane `k` after a ct-lane `k`) don't inherit the taint.
            if raw_lines[i - 1].startswith("}"):
                tainted = set()
            for m in SECRET_DECL.finditer(code):
                if m.group(2) != "(":
                    tainted.add(m.group(1))
            # One-step flow: `lhs = ...tainted...` taints lhs — catches
            # branching/indexing on an Expose()d copy.  Declassify() is the
            # sanctioned exit from the taint domain, so it stops the flow;
            # the RHS is bounded at `;` so a for-header's condition doesn't
            # taint the induction variable.
            assign = ASSIGN.search(code)
            if assign and not DECLASSIFY_CALL.search(code):
                rhs = code[assign.end():].split(";", 1)[0]
                if taint_hit(rhs):
                    tainted.add(assign.group(1))
            name = taint_hit(code)
            if name is None:
                continue
            if BRANCH_HEAD.search(code) and not allowed(i, "secret-branch"):
                findings.append((rel, i, "secret-branch",
                                 f"control flow involving secret '{name}' — use the ct::CtSelect/"
                                 "mask primitives (src/crypto/ct.h), or Declassify() with a "
                                 "ct:declassify(reason)"))
            # Only a secret used AS an index leaks an address; a secret array
            # subscripted at a public index is fine.
            if re.search(r"\[[^\]]*\b" + re.escape(name) + r"\b[^\]]*\]", code) and \
               not allowed(i, "secret-index"):
                findings.append((rel, i, "secret-index",
                                 f"array subscript involving secret '{name}' — memory "
                                 "addresses leak through the cache; use a full-scan masked "
                                 "lookup (ct::CtTableLookup)"))
            if (MEMCMP_CALL.search(code) or EQUALITY_OP.search(code)) and \
               not allowed(i, "secret-compare"):
                findings.append((rel, i, "secret-compare",
                                 f"comparison involving secret '{name}' — early-exit compares "
                                 "leak the first differing position; use ct::CtEq/ct::EqMask"))

        if not rel.startswith(CRYPTO_PREFIX):
            for i, code in enumerate(code_lines, 1):
                if EXPOSE_CALL.search(code) and not allowed(i, "secret-expose"):
                    findings.append((rel, i, "secret-expose",
                                     "Expose() outside src/crypto/ — consume secrets through "
                                     "the crypto-tier APIs, or Declassify() with a "
                                     "ct:declassify(reason)"))

        for i, code in enumerate(code_lines, 1):
            if DECLASSIFY_CALL.search(code) and not DECLASSIFY_REASON.search(raw_lines[i - 1]) \
               and not allowed(i, "ct-declassify-reason"):
                findings.append((rel, i, "ct-declassify-reason",
                                 "declassification without a same-line "
                                 "'// ct:declassify(<reason>)' comment — every exit from the "
                                 "taint domain must be self-justifying"))

    if rel in DURABILITY_FILES:
        for i, code in enumerate(code_lines, 1):
            if RENAME_CALL.search(code) and not allowed(i, "fsync-before-rename"):
                window = code_lines[max(0, i - 1 - FSYNC_WINDOW):i - 1]
                if not any(SYNC_CALL.search(w) for w in window):
                    findings.append((rel, i, "fsync-before-rename",
                                     f"Rename with no Sync in the preceding {FSYNC_WINDOW} "
                                     "lines — the atomic-commit idiom requires fsync first"))
            if MARKER_CREATE.search(code) and not allowed(i, "fsync-before-rename"):
                window = code_lines[max(0, i - 1 - FSYNC_WINDOW):i - 1]
                if not any(SYNC_CALL.search(w) for w in window):
                    findings.append((rel, i, "fsync-before-rename",
                                     "seal-marker create with no segment Sync in the "
                                     f"preceding {FSYNC_WINDOW} lines — a marker must imply "
                                     "durable segments"))


def self_test():
    """Negative tests: every rule must flag an injected violation, and the
    same violation with a trailing lint:allow must be suppressed."""
    # (filename, contents, rules that MUST fire)
    cases = [
        ("src/crypto/bad_branch.cc",
         "void f(const Secret<U256>& k) {\n"
         "  U256 v = k.Expose();\n"
         "  if (v.limbs[0]) { g(); }\n"
         "}\n",
         ["secret-branch"]),
        ("src/crypto/bad_index.cc",
         "void f(const Secret<uint64_t>& idx) {\n"
         "  uint64_t i = idx.Expose();\n"
         "  sink(table[i]);\n"
         "}\n",
         ["secret-index"]),
        ("src/crypto/bad_compare.cc",
         "bool f(const SecretBytes& tag, const Bytes& other) {\n"
         "  return memcmp(tag.Expose().data(), other.data(), 16) == 0;\n"
         "}\n",
         ["secret-compare"]),
        ("src/crypto/bad_eq.cc",
         "bool f(const Secret<U256>& a, const U256& b) {\n"
         "  U256 x = a.Expose();\n"
         "  return x == b;\n"
         "}\n",
         ["secret-compare"]),
        ("src/crypto/bad_convention.cc",
         "bool g(const U256& private_key) {\n"
         "  if (private_key.IsZero()) return false;\n"
         "  return true;\n"
         "}\n",
         ["secret-branch"]),
        ("src/core/bad_expose.cc",
         "void f(const Secret<U256>& k) {\n"
         "  sink(k.Expose());\n"
         "}\n",
         ["secret-expose"]),
        ("src/crypto/bad_declassify.cc",
         "U256 f(const Secret<U256>& k) {\n"
         "  return k.Declassify();\n"
         "}\n",
         ["ct-declassify-reason"]),
        ("src/core/bad_raw_mutex.cc",
         "std::mutex mu;\n",
         ["raw-sync-primitive"]),
        ("src/core/bad_crowd_print.cc",
         "void f(const std::string& crowd_id) {\n"
         "  printf(\"crowd=%s\", crowd_id.c_str());\n"
         "}\n",
         ["crowd-plaintext-leak"]),
    ]
    failures = []
    with tempfile.TemporaryDirectory(prefix="ctlint-selftest-") as tmp:
        for relname, contents, expected_rules in cases:
            rel = relname.replace("/", os.sep)
            os.makedirs(os.path.join(tmp, os.path.dirname(rel)), exist_ok=True)
            with open(os.path.join(tmp, rel), "w", encoding="utf-8") as f:
                f.write(contents)
            findings = []
            lint_file(tmp, rel, findings)
            fired = {rule for _, _, rule, _ in findings}
            for want in expected_rules:
                if want not in fired:
                    failures.append(f"{relname}: expected [{want}] to fire, got {sorted(fired)}")

            # The identical violation, suppressed: append lint:allow for every
            # expected rule to each line and assert those rules go quiet.
            suppressed_lines = []
            for line in contents.rstrip("\n").split("\n"):
                tags = "  ".join(f"// lint:allow({r})" for r in expected_rules)
                suppressed_lines.append(f"{line}  {tags}")
            sup_rel = rel.replace("bad_", "ok_")
            with open(os.path.join(tmp, sup_rel), "w", encoding="utf-8") as f:
                f.write("\n".join(suppressed_lines) + "\n")
            findings = []
            lint_file(tmp, sup_rel, findings)
            fired = {rule for _, _, rule, _ in findings}
            for want in expected_rules:
                if want in fired:
                    failures.append(f"{relname}: lint:allow({want}) failed to suppress")

        # Clean ct-idiomatic code must NOT flag: masked select plus a
        # reasoned declassification.
        clean = (
            "U256 f(const Secret<U256>& k, const U256& a, const U256& b) {\n"
            "  uint64_t mask = ct::NonZeroMask(k.Expose().limbs[0]);\n"
            "  U256 r = ct::CtSelect(mask, a, b);\n"
            "  ct::UnpoisonObject(r);  // ct:declassify(selector output is public)\n"
            "  return r;\n"
            "}\n")
        rel = os.path.join("src", "crypto", "clean.cc")
        with open(os.path.join(tmp, rel), "w", encoding="utf-8") as f:
            f.write(clean)
        findings = []
        lint_file(tmp, rel, findings)
        if findings:
            failures.append(f"clean.cc: false positives: {findings}")

    if failures:
        for f in failures:
            print(f"self-test FAIL: {f}")
        return 1
    print(f"lint self-test: OK ({len(cases)} injected-violation cases, "
          "all flagged and all suppressible)")
    return 0


def main():
    if len(sys.argv) > 1 and sys.argv[1] == "--self-test":
        return self_test()
    root = sys.argv[1] if len(sys.argv) > 1 else os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    findings = []
    scanned = 0
    for dirpath, _, filenames in os.walk(os.path.join(root, "src")):
        for name in sorted(filenames):
            if not name.endswith((".h", ".cc")):
                continue
            rel = os.path.relpath(os.path.join(dirpath, name), root)
            scanned += 1
            lint_file(root, rel, findings)

    if findings:
        for rel, line, rule, msg in sorted(findings):
            print(f"{rel}:{line}: [{rule}] {msg}")
        print(f"\nlint: {len(findings)} finding(s) in {scanned} files "
              "(suppress a deliberate exception with '// lint:allow(<rule>)')")
        return 1
    print(f"lint: OK ({scanned} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
